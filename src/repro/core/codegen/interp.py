"""Reference interpreter for HighIR.

Executes HighIR functions directly — probes evaluate through
:func:`repro.fields.probe.probe_convolution`, the same engine the
:mod:`repro.fields` reference objects use — without ever running probe
synthesis, kernel expansion, or code generation.  Differential tests
compare its results against the generated NumPy code to validate the
entire lowering half of the compiler (to_mid → to_low → pygen).

Execution is lane-batched exactly like generated code: every SSA value is
a NumPy array with one leading lane axis (or an unbatched constant), and
``if`` regions are predicated.
"""

from __future__ import annotations


import numpy as np

from repro.core.ir.base import Body, Func, Instr
from repro.core.ty.types import INT, TensorTy
from repro.core.xform.to_high import HighProgram
from repro.errors import CompileError
from repro.fields.probe import probe_convolution, probe_inside
from repro.runtime import ops as rt

_NP_FUNCS = {
    "sqrt": np.sqrt, "sin": np.sin, "cos": np.cos, "tan": np.tan,
    "asin": np.arcsin, "acos": np.arccos, "atan": np.arctan,
    "exp": np.exp, "log": np.log, "atan2": np.arctan2,
    "fmod": np.fmod, "floor": np.floor, "ceil": np.ceil,
    "min": np.minimum, "max": np.maximum, "abs": np.abs,
}

_CMP = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}


def _order(ty) -> int:
    return len(ty.shape) if isinstance(ty, TensorTy) else 0


class HighInterpreter:
    """Interpret the functions of a :class:`HighProgram`.

    ``images`` maps image-slot names to bound :class:`~repro.image.Image`
    objects; ``dtype`` plays the role of the compiled program's precision.
    """

    def __init__(self, high: HighProgram, images: dict, dtype=np.float64):
        self.high = high
        self.images = images
        self.dtype = dtype

    def call(self, func: Func, args: list) -> tuple:
        if len(args) != len(func.params):
            raise CompileError(
                f"{func.name} expects {len(func.params)} arguments, got {len(args)}"
            )
        env: dict[int, object] = {p.id: a for p, a in zip(func.params, args)}
        # mirror generated code: both if-arms run predicated, so dead lanes
        # may raise IEEE flags whose results the φ selects drop
        with np.errstate(all="ignore"):
            self._run_body(func.body, env)
        return tuple(env[r.id] for r in func.results)

    def _run_body(self, body: Body, env: dict, live=None) -> None:
        for item in body.items:
            if isinstance(item, Instr):
                env[item.results[0].id] = self._eval(item, env, live)
            else:
                cond = env[item.cond.id]
                live_t = cond if live is None else np.logical_and(live, cond)
                live_f = (np.logical_not(cond) if live is None
                          else np.logical_and(live, np.logical_not(cond)))
                self._run_body(item.then_body, env, live_t)
                self._run_body(item.else_body, env, live_f)
                for phi in item.phis:
                    env[phi.result.id] = rt.select(
                        cond,
                        env[phi.then_val.id],
                        env[phi.else_val.id],
                        _order(phi.result.ty),
                    )

    def _eval(self, instr: Instr, env: dict, live=None):
        op = instr.op
        a = [env[x.id] for x in instr.args]
        tys = [x.ty for x in instr.args]
        if op == "const":
            v = instr.attrs["value"]
            if isinstance(v, float):
                return self.dtype(v)
            if isinstance(v, np.ndarray) and v.dtype.kind == "f":
                return v.astype(self.dtype)
            return v
        if op == "add":
            return a[0] + a[1]
        if op == "sub":
            return a[0] - a[1]
        if op == "mul":
            if instr.results[0].ty == INT:
                return a[0] * a[1]
            return rt.scalar_broadcast_mul(a[0], a[1], _order(tys[0]), _order(tys[1]))
        if op == "div":
            if instr.results[0].ty == INT:
                return rt.idiv(a[0], a[1], live=live)
            return rt.scalar_broadcast_div(a[0], a[1], _order(tys[0]), _order(tys[1]))
        if op == "mod":
            return rt.imod(a[0], a[1], live=live)
        if op == "neg":
            return -np.asarray(a[0]) if isinstance(a[0], np.ndarray) else -a[0]
        if op == "pow":
            return rt.power(a[0], a[1])
        if op in _CMP:
            return _CMP[op](a[0], a[1])
        if op == "and":
            return np.logical_and(a[0], a[1])
        if op == "or":
            return np.logical_or(a[0], a[1])
        if op == "not":
            return np.logical_not(a[0])
        if op == "select":
            return rt.select(a[0], a[1], a[2], _order(instr.results[0].ty))
        if op in _NP_FUNCS:
            return _NP_FUNCS[op](*a)
        if op == "clamp":
            return rt.clamp(*a)
        if op == "lerp":
            return rt.lerp(a[0], a[1], a[2], _order(tys[0]))
        if op == "dot":
            return rt.dot_ord(a[0], a[1], _order(tys[0]), _order(tys[1]))
        if op == "cross":
            return rt.cross(a[0], a[1])
        if op == "outer":
            return rt.outer(a[0], a[1])
        if op == "norm":
            return rt.norm(a[0], instr.attrs["order"])
        if op == "trace":
            return rt.trace(a[0])
        if op == "det":
            return rt.det(a[0])
        if op == "transpose":
            return rt.transpose(a[0])
        if op == "evals":
            return rt.evals(a[0])
        if op == "evecs":
            return rt.evecs(a[0])
        if op == "normalize_v":
            return rt.normalize_v(a[0])
        if op == "tensor_cons":
            return rt.tensor_cons(_order(tys[0]), *a)
        if op == "tensor_index":
            return rt.tensor_index(a[0], instr.attrs["indices"], _order(tys[0]))
        if op == "identity":
            return rt.identity(instr.attrs["n"], self.dtype)
        if op == "int_to_real":
            return rt.to_real(a[0], self.dtype)
        if op == "real_to_int":
            return rt.to_int(a[0])
        if op == "probe":
            image = self.images[instr.attrs["image"]]
            pos = self._pos(a[0], image.dim)
            return probe_convolution(
                image, instr.attrs["kernel"], pos, instr.attrs["deriv"],
                dtype=self.dtype,
            )
        if op == "inside":
            image = self.images[instr.attrs["image"]]
            pos = self._pos(a[0], image.dim)
            return probe_inside(image, instr.attrs["support"], pos)
        raise CompileError(f"interp: unhandled HighIR op {op!r}")

    @staticmethod
    def _pos(pos, dim: int):
        pos = np.asarray(pos)
        if dim == 1 and (pos.ndim == 0 or pos.shape[-1] != 1):
            pos = pos[..., None]
        return pos


def compile_high(source: str, optimize=None) -> HighProgram:
    """Front half of the compiler only: source → optimized HighIR."""
    from repro.core.driver import OptOptions, _optimize
    from repro.core.syntax import parse_program
    from repro.core.ty import check_program
    from repro.core.xform.to_high import HighBuilder

    opts = optimize or OptOptions()
    typed = check_program(parse_program(source))
    hp = HighBuilder(typed).build()
    from repro.core.ir import ops as irops
    from repro.obs import NULL_TRACER

    for fn in HighBuilder.all_funcs(hp):
        _optimize(fn, irops.HIGH, opts, NULL_TRACER, "high")
    return hp
