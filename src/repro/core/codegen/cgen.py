"""LowIR -> C emitter for the native backend (strand-batched SIMD form).

``generate_c_module(high)`` walks the fully-lowered ``update`` function of a
compiled program and emits one self-contained C translation unit exposing a
single entry point::

    int dd_update(void **RP, int64_t **IP, unsigned char **BP,
                  const double *SC, const int64_t *IC,
                  const int64_t *idx, int64_t start, int64_t end);

``RP``/``IP``/``BP`` are flat per-strand buffers (real, int64, bool state plus
image voxel data and non-scalar globals), ``SC``/``IC`` carry scalar constants
(scalar globals, image origins / inverse transforms / sizes), ``idx`` is the
active-lane index list (``NULL`` means the identity mapping ``lane == k``),
and ``[start, end)`` the half-open lane range to update.  The function
returns 0 on success and 1 when an integer division by zero occurs on a live
lane (the caller re-raises ``RuntimeErrorD`` to match the NumPy backend
contract).

Unlike the PR 7 emitter (one scalar body per strand), the update loop is
*strand-batched*: strands are processed ``DD_VB`` at a time, every SSA value
becomes a small structure-of-arrays block (``dd_real v[size * DD_VB]``,
element-major with the lane index innermost, so each per-element lane loop is
a contiguous stride-1 access), and each LowIR op lowers to one or more
``#pragma omp simd`` lane loops that the C compiler turns into vector code.
Divergent control flow is if-converted: both arms of an ``IfRegion`` run on
all lanes under per-lane masks and the phis become branchless blends, except
that *heavy* arms (cost-modeled over the op table ``_HEAVY_OPS``) keep a real
``if (any-lane)`` branch so a batch that uniformly skips an expensive probe
does no work for it — the blend-vs-branch cost model from the issue.

Per-lane arithmetic order is identical to the scalar emitter (contractions
accumulate in registers in the same serial order; no cross-lane reduction
exists anywhere), so the double-precision batched kernel is bit-identical to
the scalar one and keeps the 1e-12 differential agreement with the NumPy
backend.  NaN conventions are preserved: ``min``/``max`` propagate NaN from
either side, ``argmax``-style selections treat NaN as greater-than-everything
with first-wins ties, and the eigen decompositions mirror
:mod:`repro.tensors.eigen` operation for operation.  Double-precision builds
must use ``-ffp-contract=off`` so the compiler cannot fuse multiply-adds the
NumPy code performs as two roundings.

``generate_c_module(high, single=True)`` emits the same kernel over
``float``: ``dd_real`` becomes ``float``, every libm call switches to its
``f``-suffixed form, and all numeric literals (Horner coefficients included)
are rounded to float once at emission time and printed as exact hex float
literals.  The float kernel is validated against the float64 NumPy oracle at
a relaxed tolerance (see ``core.verify.fuzz``); it may use FMA contraction,
so ``-ffp-contract=off`` is *not* required on that path.

Alongside the C source, :func:`generate_c_module` returns a picklable *plan*
describing the buffer ABI: which state slot / image / global feeds each
pointer-table entry and each scalar-constant slot, plus ``real_dtype``
("float32"/"float64") and the batch width ``vb``.  The runtime binder
(:mod:`repro.runtime.native`) fills the tables from live arrays using only
the plan, so the same compiled artifact can be reused across runs (and
across forked process workers) without re-walking the IR.

Anything the emitter cannot translate raises
:class:`~repro.errors.CodegenError`; ``Program`` catches it and falls back to
the NumPy backend.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from ...errors import CodegenError
from ..ir.base import Func, IfRegion, Instr, Phi, Value
from ..ty.types import BOOL, INT, TensorTy

__all__ = ["generate_c_module", "DEFAULT_VB_DOUBLE", "DEFAULT_VB_SINGLE"]

# Default strand-batch widths: 4 doubles or 8 floats fill one 256-bit
# vector per lane statement.  gcc prefers 256-bit vectors on current x86
# (512-bit widths measured slower on the headline probe), and a wider
# batch only grows the SoA scratch footprint without adding parallelism.
DEFAULT_VB_DOUBLE = 4
DEFAULT_VB_SINGLE = 8

# Cost weights for the blend-vs-branch model.  An IfRegion arm whose summed
# weight reaches _GUARD_MIN_COST keeps a real `if (any lane)` branch around
# it; cheaper arms always execute and rely on the phi blend alone.  Weights
# approximate emitted-loop trip counts relative to one elementwise lane op.
_HEAVY_OPS = {
    "gather": 24,
    "probe_parts": 48,
    "conv_contract": 24,
    "contract_axis": 12,
    "evecs": 48,
    "evals": 24,
    "normalize_v": 8,
    "pow": 8,
    "dot": 4,
    "horner": 3,
}
_GUARD_MIN_COST = 8


# ---------------------------------------------------------------------------
# C helper prelude
# ---------------------------------------------------------------------------

_PRECISION_DOUBLE = """\
typedef double dd_real;
#define dd_sin sin
#define dd_cos cos
#define dd_tan tan
#define dd_asin asin
#define dd_acos acos
#define dd_atan atan
#define dd_exp exp
#define dd_log log
#define dd_sqrt sqrt
#define dd_ceil ceil
#define dd_floor floor
#define dd_atan2 atan2
#define dd_pow pow
#define dd_fmod fmod
#define dd_fabs fabs
"""

_PRECISION_SINGLE = """\
typedef float dd_real;
#define dd_sin sinf
#define dd_cos cosf
#define dd_tan tanf
#define dd_asin asinf
#define dd_acos acosf
#define dd_atan atanf
#define dd_exp expf
#define dd_log logf
#define dd_sqrt sqrtf
#define dd_ceil ceilf
#define dd_floor floorf
#define dd_atan2 atan2f
#define dd_pow powf
#define dd_fmod fmodf
#define dd_fabs fabsf
"""

# All helpers are static so multiple artifacts can coexist in one process.
# NaN behaviour is load-bearing throughout: see module docstring.  Literal
# constants stay double (C promotes, the store rounds), which keeps the
# double build bit-identical to the PR 7 scalar emitter.
_HELPERS = r"""
#define DD_PI 0x1.921fb54442d18p+1

static dd_real dd_min(dd_real a, dd_real b) {
    if (isnan(a)) return a;
    if (isnan(b)) return b;
    return (a < b) ? a : b;
}

static dd_real dd_max(dd_real a, dd_real b) {
    if (isnan(a)) return a;
    if (isnan(b)) return b;
    return (a > b) ? a : b;
}

static dd_real dd_clamp(dd_real x, dd_real lo, dd_real hi) {
    return dd_min(dd_max(x, lo), hi);
}

/* np.argmax tie-breaking: NaN counts as greater than everything, first
 * occurrence wins.  "x beats current best y" is therefore: x is NaN and y is
 * not, or x > y (false when either is NaN). */
static int dd_gt_nanfirst(dd_real x, dd_real y) {
    return (isnan(x) && !isnan(y)) || x > y;
}

/* np.argmin analog: NaN counts as less than everything, first wins. */
static int dd_lt_nanfirst(dd_real x, dd_real y) {
    return (isnan(x) && !isnan(y)) || x < y;
}

static void dd_cross3(const dd_real *u, const dd_real *v, dd_real *r) {
    r[0] = u[1] * v[2] - u[2] * v[1];
    r[1] = u[2] * v[0] - u[0] * v[2];
    r[2] = u[0] * v[1] - u[1] * v[0];
}

static dd_real dd_det3(const dd_real *m) {
    return m[0] * (m[4] * m[8] - m[5] * m[7])
         - m[1] * (m[3] * m[8] - m[5] * m[6])
         + m[2] * (m[3] * m[7] - m[4] * m[6]);
}

/* Mirrors tensors.ops.normalize: scale by the max |component| (NaN
 * propagates through the max), then divide by the scaled norm; an all-zero
 * vector maps to the zero vector. */
static void dd_normalize(const dd_real *u, int n, dd_real *r) {
    dd_real mx = dd_fabs(u[0]);
    int _i;
    for (_i = 1; _i < n; _i++) {
        dd_real av = dd_fabs(u[_i]);
        if (isnan(av) || av > mx) mx = av;
    }
    {
        dd_real ss = 0.0;
        for (_i = 0; _i < n; _i++) {
            dd_real s = u[_i] / mx;
            ss += s * s;
        }
        {
            dd_real nn = dd_sqrt(ss);
            for (_i = 0; _i < n; _i++) {
                dd_real out = (u[_i] / mx) / nn;
                r[_i] = (mx > 0.0) ? out : 0.0;
            }
        }
    }
}

/* Symmetric 2x2 eigenvalues, descending.  m = [a b; b d] row-major. */
static void dd_evals2(const dd_real *m, dd_real *lam) {
    dd_real a = m[0], b = m[1], d = m[3];
    dd_real mean = 0.5 * (a + d);
    dd_real rad = dd_sqrt(dd_max(0.25 * ((a - d) * (a - d)) + b * b, 0.0));
    lam[0] = mean + rad;
    lam[1] = mean - rad;
}

/* Symmetric 3x3 eigenvalues, descending (trigonometric method, Smith 1961).
 * Mirrors tensors.eigen._sym3 step for step, including the q*identity
 * subtraction (NaN q must poison every entry, so subtract q*(i==j) rather
 * than branching on the diagonal). */
static void dd_evals3(const dd_real *m, dd_real *lam) {
    dd_real q = (m[0] + m[4] + m[8]) / 3.0;
    dd_real a01 = m[1], a02 = m[2], a12 = m[5];
    dd_real p2 = (m[0] - q) * (m[0] - q) + (m[4] - q) * (m[4] - q)
              + (m[8] - q) * (m[8] - q)
              + 2.0 * (a01 * a01 + a02 * a02 + a12 * a12);
    dd_real p = dd_sqrt(dd_max(p2 / 6.0, 0.0));
    dd_real safe_p = (p > 0.0) ? p : 1.0;
    dd_real dev[9];
    int _i, _j;
    for (_i = 0; _i < 3; _i++)
        for (_j = 0; _j < 3; _j++)
            dev[_i * 3 + _j] =
                (m[_i * 3 + _j] - q * ((_i == _j) ? 1.0 : 0.0)) / safe_p;
    {
        dd_real half_det = dd_clamp(0.5 * dd_det3(dev), -1.0, 1.0);
        dd_real phi = dd_acos(half_det) / 3.0;
        dd_real lam0 = q + 2.0 * p * dd_cos(phi);
        dd_real lam2 = q + 2.0 * p * dd_cos(phi + 2.0 * DD_PI / 3.0);
        dd_real lam1 = 3.0 * q - lam0 - lam2;
        if (p == 0.0) { lam0 = q; lam1 = q; lam2 = q; }
        lam[0] = lam0;
        lam[1] = lam1;
        lam[2] = lam2;
    }
}

/* Candidate eigenvector for eigenvalue lam of symmetric 3x3 m: the largest
 * cross product of row pairs of (m - lam I).  Returns the confidence value;
 * writes a unit vector (or the (1,0,0) fallback) into vec.  Mirrors
 * tensors.eigen._evec_raw including argmax NaN-first-wins selection. */
static dd_real dd_evec_raw(const dd_real *m, dd_real lam, dd_real *vec) {
    dd_real a[9];
    dd_real c01[3], c02[3], c12[3];
    dd_real n01, n02, n12;
    dd_real best[3];
    dd_real len2, length, scale2, conf;
    int good, _i, _j;
    for (_i = 0; _i < 3; _i++)
        for (_j = 0; _j < 3; _j++)
            a[_i * 3 + _j] = m[_i * 3 + _j] - lam * ((_i == _j) ? 1.0 : 0.0);
    dd_cross3(a + 0, a + 3, c01);
    dd_cross3(a + 0, a + 6, c02);
    dd_cross3(a + 3, a + 6, c12);
    n01 = c01[0] * c01[0] + c01[1] * c01[1] + c01[2] * c01[2];
    n02 = c02[0] * c02[0] + c02[1] * c02[1] + c02[2] * c02[2];
    n12 = c12[0] * c12[0] + c12[1] * c12[1] + c12[2] * c12[2];
    /* argmax over [n01, n02, n12], NaN-as-greatest, first wins. */
    best[0] = c01[0]; best[1] = c01[1]; best[2] = c01[2];
    len2 = n01;
    if (dd_gt_nanfirst(n02, len2)) {
        best[0] = c02[0]; best[1] = c02[1]; best[2] = c02[2];
        len2 = n02;
    }
    if (dd_gt_nanfirst(n12, len2)) {
        best[0] = c12[0]; best[1] = c12[1]; best[2] = c12[2];
        len2 = n12;
    }
    length = dd_sqrt(len2);
    scale2 = 0.0;
    for (_i = 0; _i < 9; _i++) scale2 += a[_i] * a[_i];
    conf = length / dd_max(scale2, 1e-24);
    good = length > 1e-24;
    if (good) {
        vec[0] = best[0] / length;
        vec[1] = best[1] / length;
        vec[2] = best[2] / length;
        return conf;
    }
    vec[0] = 1.0; vec[1] = 0.0; vec[2] = 0.0;
    return 0.0;
}

/* A unit vector orthogonal to v: cross v with the axis vector along v's
 * smallest |component| (argmin, NaN-as-least, first wins). */
static void dd_orth_unit(const dd_real *v, dd_real *r) {
    dd_real av0 = dd_fabs(v[0]), av1 = dd_fabs(v[1]), av2 = dd_fabs(v[2]);
    int ax = 0;
    dd_real e[3];
    dd_real len;
    if (dd_lt_nanfirst(av1, av0)) ax = 1;
    if (dd_lt_nanfirst(av2, (ax == 0) ? av0 : av1)) ax = 2;
    e[0] = 0.0; e[1] = 0.0; e[2] = 0.0;
    e[ax] = 1.0;
    dd_cross3(v, e, r);
    len = dd_sqrt(r[0] * r[0] + r[1] * r[1] + r[2] * r[2]);
    len = (len > 0.0) ? len : 1.0;
    r[0] /= len; r[1] /= len; r[2] /= len;
}

/* Symmetric 2x2 eigenvectors as rows, matching tensors.eigen.evecs. */
static void dd_evecs2(const dd_real *m, dd_real *rows) {
    dd_real a = m[0], b = m[1], d = m[3];
    dd_real lam[2];
    int _i;
    dd_evals2(m, lam);
    for (_i = 0; _i < 2; _i++) {
        dd_real li = lam[_i];
        dd_real v1x = b, v1y = li - a;
        dd_real v2x = li - d, v2y = b;
        dd_real n1 = v1x * v1x + v1y * v1y;
        dd_real n2 = v2x * v2x + v2y * v2y;
        int pick1 = n1 >= n2;
        dd_real vx = pick1 ? v1x : v2x;
        dd_real vy = pick1 ? v1y : v2y;
        dd_real len = dd_sqrt(dd_max(vx * vx + vy * vy, 0.0));
        int good = len > 1e-24;
        rows[_i * 2 + 0] = good ? vx / len : ((_i == 0) ? 1.0 : 0.0);
        rows[_i * 2 + 1] = good ? vy / len : ((_i == 0) ? 0.0 : 1.0);
    }
}

/* Symmetric 3x3 eigenvectors as rows, matching tensors.eigen.evecs:
 * raw candidates for lam0/lam2, orthogonal-fallbacks for weak confidence,
 * Gram-Schmidt v2 against v0, middle vector by cross product. */
static void dd_evecs3(const dd_real *m, dd_real *rows) {
    dd_real lam[3];
    dd_real v0[3], v2[3];
    dd_real c0, c2;
    int w0, w2;
    dd_real ortho0[3];
    dd_real dotp, l2;
    dd_real v1[3];
    int _i;
    dd_evals3(m, lam);
    c0 = dd_evec_raw(m, lam[0], v0);
    c2 = dd_evec_raw(m, lam[2], v2);
    w0 = c0 <= 1e-10;
    w2 = c2 <= 1e-10;
    if (w2 && !w0) {
        dd_real ortho2[3];
        dd_orth_unit(v0, ortho2);
        v2[0] = ortho2[0]; v2[1] = ortho2[1]; v2[2] = ortho2[2];
    }
    if (w0) {
        dd_orth_unit(v2, ortho0);
        v0[0] = ortho0[0]; v0[1] = ortho0[1]; v0[2] = ortho0[2];
    } else {
        /* keep ortho0 available for the degenerate-v2 fallback below; it is
         * a pure function of v2 so compute it unconditionally. */
        dd_orth_unit(v2, ortho0);
    }
    dotp = v2[0] * v0[0] + v2[1] * v0[1] + v2[2] * v0[2];
    for (_i = 0; _i < 3; _i++) v2[_i] -= dotp * v0[_i];
    l2 = dd_sqrt(v2[0] * v2[0] + v2[1] * v2[1] + v2[2] * v2[2]);
    if (l2 > 1e-24) {
        for (_i = 0; _i < 3; _i++) v2[_i] /= l2;
    } else {
        /* degenerate after projection: fall back to a vector orthogonal to
         * the *original* v2 — but v2 has been mutated, so the Python code's
         * equivalent (recomputing from the pre-Gram-Schmidt v2) is the
         * ortho0 captured above. */
        v2[0] = ortho0[0]; v2[1] = ortho0[1]; v2[2] = ortho0[2];
    }
    dd_cross3(v2, v0, v1);
    rows[0] = v0[0]; rows[1] = v0[1]; rows[2] = v0[2];
    rows[3] = v1[0]; rows[4] = v1[1]; rows[5] = v1[2];
    rows[6] = v2[0]; rows[7] = v2[1]; rows[8] = v2[2];
}
"""


def _prelude(single: bool, vb: int) -> str:
    precision = _PRECISION_SINGLE if single else _PRECISION_DOUBLE
    return (
        "#include <stdint.h>\n"
        "#include <math.h>\n\n"
        f"#define DD_VB {vb}\n"
        '#define DD_SIMD _Pragma("omp simd")\n\n'
        + precision
        + _HELPERS
    )


# ---------------------------------------------------------------------------
# Type helpers
# ---------------------------------------------------------------------------


def _tensor_size(ty: Any) -> int:
    """Flat element count for a REAL/tensor type (1 for a scalar)."""
    n = 1
    for s in ty.shape:
        n *= s
    return n


def _val_size(ty: Any) -> int:
    """Flat element count of a value of any LowIR type tag."""
    if ty == INT or ty == BOOL or isinstance(ty, (type(INT), type(BOOL))):
        return 1
    if isinstance(ty, TensorTy):
        return _tensor_size(ty)
    if isinstance(ty, tuple):
        tag = ty[0]
        if tag == "ivec":
            return int(ty[1])
        if tag == "weights":
            return int(ty[1])
        # vox / part sizes depend on image metadata; resolved by callers that
        # carry the image table.
    raise CodegenError(f"cgen: cannot size type {ty!r}")


def _c_float(x: float, single: bool = False) -> str:
    """An exact C literal for a Python float (rounded once for float)."""
    if single:
        x = float(np.float32(x))
        if math.isnan(x):
            return "NAN"
        if math.isinf(x):
            return "INFINITY" if x > 0 else "-INFINITY"
        if x == int(x) and abs(x) < 1e15:
            return f"{x:.1f}f"
        return float(x).hex() + "f"
    if math.isnan(x):
        return "NAN"
    if math.isinf(x):
        return "INFINITY" if x > 0 else "-INFINITY"
    if x == int(x) and abs(x) < 1e15:
        return f"{x:.1f}"
    return float(x).hex()


def _c_int(x: int) -> str:
    x = int(x)
    if x == -(2**63):
        return "(-9223372036854775807LL - 1)"
    return f"{x}LL"


class _Namer:
    """Stable C identifiers for SSA values and a counter for scratch names."""

    def __init__(self) -> None:
        self._uid = 0

    def val(self, v: Value) -> str:
        return f"v{v.id}"

    def fresh(self, stem: str) -> str:
        self._uid += 1
        return f"_{stem}{self._uid}"


# ---------------------------------------------------------------------------
# Emitter
# ---------------------------------------------------------------------------


class _Emitter:
    def __init__(self, high: Any, single: bool = False, batch: int | None = None) -> None:
        self.high = high
        self.func: Func = high.update_func
        self.images = dict(high.images)
        self.single = bool(single)
        if batch is None:
            batch = DEFAULT_VB_SINGLE if single else DEFAULT_VB_DOUBLE
        batch = int(batch)
        if not 1 <= batch <= 64:
            raise CodegenError(f"cgen: batch width {batch} out of range [1, 64]")
        self.vb = batch
        self.names = _Namer()
        self.lines: list[str] = []
        self.indent = 1
        # value id -> flat element count of the logical value
        self.sizes: dict[int, int] = {}
        # value id -> "array" | "scalar" (logical shape; varying scalars are
        # still DD_VB-wide C arrays, one slot per lane)
        self.kinds: dict[int, str] = {}
        # ids of lane-invariant values (globals + hoisted constants)
        self.uniform: set[int] = set()
        # ids of values that must be zero-initialized (phi operands: their
        # defining arm may be skipped by an any-lane guard)
        self.zero_init: set[int] = set()
        # IfRegion predication masks, innermost last (C names of int[DD_VB])
        self.mask_stack: list[str] = []
        # plan tables, filled by _build_plan
        self.plan: dict[str, Any] = {}
        self.real_ptr_index: dict[Any, int] = {}
        self.int_ptr_index: dict[Any, int] = {}
        self.bool_ptr_index: dict[Any, int] = {}
        self.sc_index: dict[Any, int] = {}
        self.ic_index: dict[Any, int] = {}

    # -- plumbing -----------------------------------------------------------

    def emit(self, line: str = "") -> None:
        self.lines.append(("    " * self.indent) + line if line else "")

    def fail(self, msg: str) -> None:
        raise CodegenError(f"cgen: {msg}")

    def flit(self, x: float) -> str:
        return _c_float(float(x), self.single)

    # -- lane-loop helpers --------------------------------------------------

    def lane_stmt(self, stmt: str, simd: bool = True) -> None:
        """One lane loop ``for (_l = 0; _l < _n; _l++) stmt``."""
        if simd and self.vb > 1:
            self.emit("DD_SIMD")
        self.emit(f"for (int _l = 0; _l < _n; _l++) {stmt}")

    def lane_open(self, simd: bool = True) -> None:
        if simd and self.vb > 1:
            self.emit("DD_SIMD")
        self.emit("for (int _l = 0; _l < _n; _l++) {")
        self.indent += 1

    def lane_close(self) -> None:
        self.indent -= 1
        self.emit("}")

    # -- image metadata -----------------------------------------------------

    def _image_info(self, name: str) -> tuple[int, int]:
        """(dim, tensor element count) for an image by name."""
        slot = self.images.get(name)
        if slot is None:
            self.fail(f"unknown image {name!r}")
        tsize = 1
        for s in slot.shape:
            tsize *= s
        return slot.dim, tsize

    def _vox_size(self, ty: Any) -> int:
        tag = ty[0]
        if tag == "vox":
            _, img, s = ty
            dim, tsize = self._image_info(img)
            return ((2 * int(s)) ** dim) * tsize
        if tag == "part":
            _, img, s, axes = ty
            _, tsize = self._image_info(img)
            return ((2 * int(s)) ** int(axes)) * tsize
        self.fail(f"cannot size type {ty!r}")
        return 0  # unreachable

    def size_of(self, v: Value) -> int:
        sz = self.sizes.get(v.id)
        if sz is None:
            self.fail(f"value v{v.id} has no recorded size")
        return sz

    def compute_size(self, ty: Any) -> int:
        if isinstance(ty, tuple) and ty[0] in ("vox", "part"):
            return self._vox_size(ty)
        return _val_size(ty)

    # -- value references ---------------------------------------------------

    def is_scalar_val(self, v: Value) -> bool:
        return self.kinds.get(v.id) == "scalar"

    def ref(self, v: Value, e: str | int = 0, lane: str = "_l") -> str:
        """C expression for element ``e`` of value ``v`` on lane ``lane``."""
        name = self.names.val(v)
        uni = v.id in self.uniform
        if self.kinds.get(v.id) == "scalar":
            return name if uni else f"{name}[{lane}]"
        if uni:
            return f"{name}[{e}]"
        if isinstance(e, int):
            return f"{name}[{e * self.vb} + {lane}]"
        return f"{name}[({e}) * DD_VB + {lane}]"

    # -- plan construction --------------------------------------------------

    def _build_plan(self) -> None:
        high = self.high
        func = self.func
        used_images = sorted(
            {
                ins.attrs["image"]
                for ins in func.body.instructions()
                if isinstance(ins, Instr) and "image" in ins.attrs
            }
        )
        for name in used_images:
            if name not in self.images:
                self.fail(f"instruction references unknown image {name!r}")

        n_globals = len(high.concrete_globals)
        state_names = list(high.state_order) + list(high.extra_state)
        n_state = len(state_names)
        if len(func.params) != n_globals + n_state:
            self.fail(
                "update function arity mismatch: "
                f"{len(func.params)} params vs {n_globals} globals + {n_state} state"
            )
        # update returns one result per *written* state slot (a prefix of
        # the slots, in state order) plus status; immutable extras at the
        # tail are read-only parameters with no writeback
        n_ret = len(func.results) - 1
        if not 0 <= n_ret <= n_state:
            self.fail(
                f"update result arity mismatch: {len(func.results)} results "
                f"vs {n_state} state + status"
            )

        real_ptrs: list[tuple] = []
        int_ptrs: list[tuple] = []
        bool_ptrs: list[tuple] = []
        sc: list[tuple] = []
        ic: list[tuple] = []

        for name in used_images:
            self.real_ptr_index[("image", name)] = len(real_ptrs)
            real_ptrs.append(("image", name))

        for gi in range(n_globals):
            ty = func.params[gi].ty
            if isinstance(ty, TensorTy) and ty.shape != ():
                self.real_ptr_index[("global", gi)] = len(real_ptrs)
                real_ptrs.append(("global", gi))
            elif isinstance(ty, TensorTy):
                self.sc_index[("global", gi)] = len(sc)
                sc.append(("global", gi))
            elif ty == INT or ty == BOOL:
                self.ic_index[("global", gi)] = len(ic)
                ic.append(("global", gi))
            else:
                self.fail(f"unsupported global type {ty!r}")

        for si in range(n_state):
            ty = func.params[n_globals + si].ty
            if isinstance(ty, TensorTy):
                self.real_ptr_index[("state", si)] = len(real_ptrs)
                real_ptrs.append(("state", si))
            elif ty == INT:
                self.int_ptr_index[("state", si)] = len(int_ptrs)
                int_ptrs.append(("state", si))
            elif ty == BOOL:
                self.bool_ptr_index[("state", si)] = len(bool_ptrs)
                bool_ptrs.append(("state", si))
            else:
                self.fail(f"unsupported state type {ty!r}")

        # strand status lives in the int pointer table, last slot
        self.int_ptr_index[("status",)] = len(int_ptrs)
        int_ptrs.append(("status",))

        for name in used_images:
            slot = self.images[name]
            d = slot.dim
            self.sc_index[("origin", name)] = len(sc)
            sc.extend(("origin", name) for _ in range(d))
            self.sc_index[("minv", name)] = len(sc)
            sc.extend(("minv", name) for _ in range(d * d))
            self.sc_index[("gxf", name)] = len(sc)
            sc.extend(("gxf", name) for _ in range(d * d))
            self.ic_index[("sizes", name)] = len(ic)
            ic.extend(("sizes", name) for _ in range(d))

        self.plan = {
            "real_ptrs": real_ptrs,
            "int_ptrs": int_ptrs,
            "bool_ptrs": bool_ptrs,
            "sc": sc,
            "ic": ic,
            "images": used_images,
            "n_globals": n_globals,
            "n_state": n_state,
            "n_ret": n_ret,
            "real_dtype": "float32" if self.single else "float64",
            "vb": self.vb,
        }

    # -- declarations -------------------------------------------------------

    def _collect_phi_operands(self, body) -> None:
        """Mark every phi operand for zero-initialization: its defining arm
        may sit behind an any-lane guard that a batch skips entirely, and the
        blend must then read a defined (if irrelevant) value."""
        for item in body.items:
            if isinstance(item, IfRegion):
                for phi in item.phis:
                    self.zero_init.add(phi.then_val.id)
                    self.zero_init.add(phi.else_val.id)
                self._collect_phi_operands(item.then_body)
                self._collect_phi_operands(item.else_body)

    def _declare_results(self, body) -> None:
        """Hoist C declarations for every Instr/Phi result in the body tree.

        Constant instructions become initialized lane-invariant declarations
        here (their op handler is then a no-op); everything else is a varying
        SoA block sized ``size * DD_VB``."""
        for item in body.items:
            if isinstance(item, Instr):
                if item.op == "const":
                    continue  # hoisted to function scope by _declare_consts
                for r in item.results:
                    self._declare_value(r)
            elif isinstance(item, IfRegion):
                self._declare_results(item.then_body)
                self._declare_results(item.else_body)
                for phi in item.phis:
                    self._declare_value(phi.result)

    def _declare_const(self, ins: Instr) -> None:
        res = ins.result
        v = ins.attrs["value"]
        name = self.names.val(res)
        self.uniform.add(res.id)
        if res.ty == BOOL:
            self.kinds[res.id] = "scalar"
            self.sizes[res.id] = 1
            self.emit(f"const int {name} = {1 if v else 0};")
        elif res.ty == INT:
            self.kinds[res.id] = "scalar"
            self.sizes[res.id] = 1
            self.emit(f"const int64_t {name} = {_c_int(v)};")
        elif isinstance(res.ty, TensorTy):
            try:
                arr = np.asarray(v, dtype=np.float64).reshape(-1)
            except (TypeError, ValueError) as exc:
                self.fail(f"const has non-numeric payload {v!r}: {exc}")
            sz = _tensor_size(res.ty)
            self.sizes[res.id] = sz
            if res.ty.shape == ():
                self.kinds[res.id] = "scalar"
                self.emit(f"const dd_real {name} = {self.flit(arr[0])};")
            else:
                self.kinds[res.id] = "array"
                lits = ", ".join(self.flit(x) for x in arr)
                self.emit(f"const dd_real {name}[{sz}] = {{{lits}}};")
        else:
            self.fail(f"const of unsupported type {res.ty!r}")

    def _declare_value(self, v: Value) -> None:
        ty = v.ty
        name = self.names.val(v)
        init = " = {0}" if v.id in self.zero_init else ""
        if ty == INT:
            self.kinds[v.id] = "scalar"
            self.sizes[v.id] = 1
            self.emit(f"int64_t {name}[DD_VB]{init};")
        elif ty == BOOL:
            self.kinds[v.id] = "scalar"
            self.sizes[v.id] = 1
            self.emit(f"int {name}[DD_VB]{init};")
        elif isinstance(ty, TensorTy):
            sz = _tensor_size(ty)
            self.sizes[v.id] = sz
            if ty.shape == ():
                self.kinds[v.id] = "scalar"
                self.emit(f"dd_real {name}[DD_VB]{init};")
            else:
                self.kinds[v.id] = "array"
                self.emit(f"dd_real {name}[{sz} * DD_VB]{init};")
        elif isinstance(ty, tuple) and ty[0] == "ivec":
            self.kinds[v.id] = "array"
            self.sizes[v.id] = int(ty[1])
            self.emit(f"int64_t {name}[{int(ty[1])} * DD_VB]{init};")
        elif isinstance(ty, tuple) and ty[0] in ("weights", "vox", "part"):
            sz = self.compute_size(ty)
            self.kinds[v.id] = "array"
            self.sizes[v.id] = sz
            self.emit(f"dd_real {name}[{sz} * DD_VB]{init};")
        else:
            self.fail(f"cannot declare value of type {ty!r}")

    # -- elementwise helpers ------------------------------------------------

    def _bcast_ref(self, v: Value, idx: str | int, out_size: int) -> str:
        """Reference operand ``v`` inside an elementwise loop of ``out_size``.

        Mirrors runtime _align: a smaller operand of size ka is indexed by
        ``i / (out_size // ka)`` (trailing singleton padding)."""
        if self.is_scalar_val(v):
            return self.ref(v)
        ka = self.size_of(v)
        if ka == out_size:
            return self.ref(v, idx)
        if ka == 1:
            return self.ref(v, 0)
        if out_size % ka != 0:
            self.fail(f"broadcast mismatch: operand size {ka} vs result {out_size}")
        step = out_size // ka
        if isinstance(idx, int):
            return self.ref(v, idx // step)
        return self.ref(v, f"({idx}) / {step}")

    def _ew_loop(self, res: Value, body_fn) -> None:
        """Element loop outer, SIMD lane loop inner, assigning each element.

        ``body_fn(idx_expr) -> rhs C expression`` (may reference lane _l)."""
        name = self.names.val(res)
        if self.is_scalar_val(res):
            self.lane_stmt(f"{name}[_l] = {body_fn(0)};")
            return
        sz = self.size_of(res)
        e = self.names.fresh("e")
        self.emit(f"for (int {e} = 0; {e} < {sz}; {e}++) {{")
        self.indent += 1
        self.lane_stmt(f"{name}[({e}) * DD_VB + _l] = {body_fn(e)};")
        self.indent -= 1
        self.emit("}")

    # -- instruction dispatch -----------------------------------------------

    def _emit_instr(self, ins: Instr) -> None:
        op = ins.op
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            self.fail(f"unsupported LowIR op {op!r}")
        handler(ins)

    # .. constants ..........................................................

    def _op_const(self, ins: Instr) -> None:
        # Constants are hoisted to lane-invariant initialized declarations
        # (see _declare_const); nothing to do at the original program point.
        pass

    # .. arithmetic .........................................................

    def _binop_ew(self, ins: Instr, cop: str) -> None:
        a, b = ins.args
        res = ins.result
        sz = self.size_of(res)
        self._ew_loop(
            res,
            lambda i: f"{self._bcast_ref(a, i, sz)} {cop} {self._bcast_ref(b, i, sz)}",
        )

    def _op_add(self, ins: Instr) -> None:
        if ins.result.ty == INT:
            a, b = ins.args
            name = self.names.val(ins.result)
            self.lane_stmt(f"{name}[_l] = {self.ref(a)} + {self.ref(b)};")
        else:
            self._binop_ew(ins, "+")

    def _op_sub(self, ins: Instr) -> None:
        if ins.result.ty == INT:
            a, b = ins.args
            name = self.names.val(ins.result)
            self.lane_stmt(f"{name}[_l] = {self.ref(a)} - {self.ref(b)};")
        else:
            self._binop_ew(ins, "-")

    def _op_neg(self, ins: Instr) -> None:
        (a,) = ins.args
        res = ins.result
        if res.ty == INT:
            self.lane_stmt(f"{self.names.val(res)}[_l] = -{self.ref(a)};")
            return
        sz = self.size_of(res)
        self._ew_loop(res, lambda i: f"-{self._bcast_ref(a, i, sz)}")

    def _op_mul(self, ins: Instr) -> None:
        a, b = ins.args
        res = ins.result
        if res.ty == INT:
            self.lane_stmt(f"{self.names.val(res)}[_l] = {self.ref(a)} * {self.ref(b)};")
            return
        self._binop_ew(ins, "*")

    def _int_div_like(self, ins: Instr, cop: str) -> None:
        """Integer / and % with the runtime's zero-divisor contract: a zero
        divisor on a *live* lane (under the current predication mask) is the
        "integer division by zero" fault; dead lanes compute a sanitized 0
        through a safe divisor so no lane ever traps."""
        a, b = ins.args
        res = ins.result
        name = self.names.val(res)
        bn = self.ref(b)
        mask = self.mask_stack[-1] if self.mask_stack else None
        if mask is None:
            self.lane_stmt(f"if ({bn} == 0) return 1;", simd=False)
            self.lane_stmt(f"{name}[_l] = {self.ref(a)} {cop} {bn};", simd=False)
        else:
            self.lane_stmt(f"if ({mask}[_l] && {bn} == 0) return 1;", simd=False)
            self.lane_open(simd=False)
            self.emit(f"int64_t _d = ({bn} == 0) ? 1 : {bn};")
            self.emit(f"{name}[_l] = ({bn} == 0) ? 0 : {self.ref(a)} {cop} _d;")
            self.lane_close()

    def _op_div(self, ins: Instr) -> None:
        if ins.result.ty == INT:
            # C truncation-toward-zero matches the NumPy backend's idiv.
            self._int_div_like(ins, "/")
            return
        self._binop_ew(ins, "/")

    def _op_mod(self, ins: Instr) -> None:
        if ins.result.ty == INT:
            # imod = a - idiv(a,b)*b; C % has the same truncated semantics.
            self._int_div_like(ins, "%")
            return
        self._ew_fmod(ins)

    def _ew_fmod(self, ins: Instr) -> None:
        a, b = ins.args
        res = ins.result
        sz = self.size_of(res)
        self._ew_loop(
            res,
            lambda i: f"dd_fmod({self._bcast_ref(a, i, sz)}, {self._bcast_ref(b, i, sz)})",
        )

    _op_fmod = _ew_fmod

    def _op_pow(self, ins: Instr) -> None:
        a, b = ins.args
        res = ins.result
        if res.ty == INT:
            self.fail("integer pow is not supported by the native backend")
        sz = self.size_of(res)

        def bexpr(i):
            e = self._bcast_ref(b, i, sz)
            return f"(dd_real){e}" if b.ty == INT else e

        self._ew_loop(
            res, lambda i: f"dd_pow({self._bcast_ref(a, i, sz)}, {bexpr(i)})"
        )

    # .. comparisons / logic ................................................

    def _cmp(self, ins: Instr, cop: str) -> None:
        a, b = ins.args
        res = ins.result
        if not (self.is_scalar_val(a) and self.is_scalar_val(b)):
            self.fail(f"tensor comparison ({ins.op}) is not supported")
        self.lane_stmt(f"{self.names.val(res)}[_l] = {self.ref(a)} {cop} {self.ref(b)};")

    def _op_eq(self, ins: Instr) -> None:
        self._cmp(ins, "==")

    def _op_ne(self, ins: Instr) -> None:
        self._cmp(ins, "!=")

    def _op_lt(self, ins: Instr) -> None:
        self._cmp(ins, "<")

    def _op_le(self, ins: Instr) -> None:
        self._cmp(ins, "<=")

    def _op_gt(self, ins: Instr) -> None:
        self._cmp(ins, ">")

    def _op_ge(self, ins: Instr) -> None:
        self._cmp(ins, ">=")

    def _op_and(self, ins: Instr) -> None:
        a, b = ins.args
        self.lane_stmt(
            f"{self.names.val(ins.result)}[_l] = {self.ref(a)} && {self.ref(b)};"
        )

    def _op_or(self, ins: Instr) -> None:
        a, b = ins.args
        self.lane_stmt(
            f"{self.names.val(ins.result)}[_l] = {self.ref(a)} || {self.ref(b)};"
        )

    def _op_not(self, ins: Instr) -> None:
        (a,) = ins.args
        self.lane_stmt(f"{self.names.val(ins.result)}[_l] = !{self.ref(a)};")

    # .. math functions ......................................................

    def _mathfn(self, ins: Instr, cname: str) -> None:
        (a,) = ins.args
        res = ins.result
        sz = self.size_of(res)
        self._ew_loop(res, lambda i: f"{cname}({self._bcast_ref(a, i, sz)})")

    def _op_sin(self, ins):
        self._mathfn(ins, "dd_sin")

    def _op_cos(self, ins):
        self._mathfn(ins, "dd_cos")

    def _op_tan(self, ins):
        self._mathfn(ins, "dd_tan")

    def _op_asin(self, ins):
        self._mathfn(ins, "dd_asin")

    def _op_acos(self, ins):
        self._mathfn(ins, "dd_acos")

    def _op_atan(self, ins):
        self._mathfn(ins, "dd_atan")

    def _op_exp(self, ins):
        self._mathfn(ins, "dd_exp")

    def _op_log(self, ins):
        self._mathfn(ins, "dd_log")

    def _op_sqrt(self, ins):
        self._mathfn(ins, "dd_sqrt")

    def _op_ceil(self, ins):
        self._mathfn(ins, "dd_ceil")

    def _op_floor(self, ins):
        self._mathfn(ins, "dd_floor")

    def _op_atan2(self, ins: Instr) -> None:
        a, b = ins.args
        res = ins.result
        sz = self.size_of(res)
        self._ew_loop(
            res,
            lambda i: (
                f"dd_atan2({self._bcast_ref(a, i, sz)}, {self._bcast_ref(b, i, sz)})"
            ),
        )

    def _op_abs(self, ins: Instr) -> None:
        (a,) = ins.args
        res = ins.result
        if res.ty == INT:
            an = self.ref(a)
            self.lane_stmt(f"{self.names.val(res)}[_l] = ({an} < 0) ? -{an} : {an};")
            return
        sz = self.size_of(res)
        self._ew_loop(res, lambda i: f"dd_fabs({self._bcast_ref(a, i, sz)})")

    def _op_min(self, ins: Instr) -> None:
        a, b = ins.args
        res = ins.result
        if res.ty == INT:
            an, bn = self.ref(a), self.ref(b)
            self.lane_stmt(f"{self.names.val(res)}[_l] = ({an} < {bn}) ? {an} : {bn};")
            return
        sz = self.size_of(res)
        self._ew_loop(
            res,
            lambda i: f"dd_min({self._bcast_ref(a, i, sz)}, {self._bcast_ref(b, i, sz)})",
        )

    def _op_max(self, ins: Instr) -> None:
        a, b = ins.args
        res = ins.result
        if res.ty == INT:
            an, bn = self.ref(a), self.ref(b)
            self.lane_stmt(f"{self.names.val(res)}[_l] = ({an} > {bn}) ? {an} : {bn};")
            return
        sz = self.size_of(res)
        self._ew_loop(
            res,
            lambda i: f"dd_max({self._bcast_ref(a, i, sz)}, {self._bcast_ref(b, i, sz)})",
        )

    def _op_clamp(self, ins: Instr) -> None:
        # Diderot argument order: clamp(lo, hi, x)
        lo, hi, x = ins.args
        res = ins.result
        if res.ty == INT:
            xn, ln, hn = self.ref(x), self.ref(lo), self.ref(hi)
            lo_t = f"(({xn} > {ln}) ? {xn} : {ln})"
            self.lane_stmt(f"{self.names.val(res)}[_l] = ({lo_t} < {hn}) ? {lo_t} : {hn};")
            return
        sz = self.size_of(res)
        self._ew_loop(
            res,
            lambda i: (
                f"dd_clamp({self._bcast_ref(x, i, sz)}, "
                f"{self._bcast_ref(lo, i, sz)}, {self._bcast_ref(hi, i, sz)})"
            ),
        )

    def _op_lerp(self, ins: Instr) -> None:
        a, b, t = ins.args
        res = ins.result
        sz = self.size_of(res)
        self._ew_loop(
            res,
            lambda i: (
                f"{self._bcast_ref(a, i, sz)} + {self._bcast_ref(t, i, sz)} * "
                f"({self._bcast_ref(b, i, sz)} - {self._bcast_ref(a, i, sz)})"
            ),
        )

    def _op_select(self, ins: Instr) -> None:
        c, t, e = ins.args
        res = ins.result
        sz = self.size_of(res)
        self._ew_loop(
            res,
            lambda i: (
                f"{self.ref(c)} ? {self._bcast_ref(t, i, sz)} : "
                f"{self._bcast_ref(e, i, sz)}"
            ),
        )

    # .. conversions .........................................................

    def _op_int_to_real(self, ins: Instr) -> None:
        (a,) = ins.args
        self.lane_stmt(f"{self.names.val(ins.result)}[_l] = (dd_real){self.ref(a)};")

    def _op_real_to_int(self, ins: Instr) -> None:
        (a,) = ins.args
        # np.trunc then int64: C's (int64_t) cast truncates toward zero.
        self.lane_stmt(f"{self.names.val(ins.result)}[_l] = (int64_t){self.ref(a)};")

    # .. tensor algebra ......................................................

    def _op_dot(self, ins: Instr) -> None:
        a, b = ins.args
        res = ins.result
        oa = a.ty.order if isinstance(a.ty, TensorTy) else 0
        ob = b.ty.order if isinstance(b.ty, TensorTy) else 0
        name = self.names.val(res)
        # the k reduction is unrolled (left-associated) so the lane loop
        # stays straight-line code the compiler will vectorize
        if oa == 1 and ob == 1:
            n = self.size_of(a)
            chain = " + ".join(
                f"{self.ref(a, k)} * {self.ref(b, k)}" for k in range(n)
            )
            self.lane_stmt(f"{name}[_l] = {chain};")
        elif oa == 2 and ob == 1:
            n = self.size_of(b)
            i = self.names.fresh("i")
            self.emit(f"for (int {i} = 0; {i} < {n}; {i}++) {{")
            self.indent += 1
            chain = " + ".join(
                f"{self.ref(a, f'{i} * {n} + {k}')} * {self.ref(b, k)}"
                for k in range(n)
            )
            self.lane_stmt(f"{name}[({i}) * DD_VB + _l] = {chain};")
            self.indent -= 1
            self.emit("}")
        elif oa == 1 and ob == 2:
            n = self.size_of(a)
            j = self.names.fresh("j")
            self.emit(f"for (int {j} = 0; {j} < {n}; {j}++) {{")
            self.indent += 1
            chain = " + ".join(
                f"{self.ref(a, k)} * {self.ref(b, f'{k} * {n} + {j}')}"
                for k in range(n)
            )
            self.lane_stmt(f"{name}[({j}) * DD_VB + _l] = {chain};")
            self.indent -= 1
            self.emit("}")
        elif oa == 2 and ob == 2:
            n = a.ty.shape[0]
            i = self.names.fresh("i")
            j = self.names.fresh("j")
            self.emit(f"for (int {i} = 0; {i} < {n}; {i}++)")
            self.emit(f"for (int {j} = 0; {j} < {n}; {j}++) {{")
            self.indent += 1
            chain = " + ".join(
                f"{self.ref(a, f'{i} * {n} + {k}')} * "
                f"{self.ref(b, f'{k} * {n} + {j}')}"
                for k in range(n)
            )
            self.lane_stmt(f"{name}[({i} * {n} + {j}) * DD_VB + _l] = {chain};")
            self.indent -= 1
            self.emit("}")
        else:
            self.fail(f"dot of orders ({oa}, {ob}) is not supported")

    def _op_cross(self, ins: Instr) -> None:
        a, b = ins.args
        res = ins.result
        name = self.names.val(res)
        if self.size_of(a) == 2:
            self.lane_stmt(
                f"{name}[_l] = {self.ref(a, 0)} * {self.ref(b, 1)} - "
                f"{self.ref(a, 1)} * {self.ref(b, 0)};"
            )
            return
        # inline dd_cross3 component by component (same parenthesization)
        for r, (i, j) in enumerate(((1, 2), (2, 0), (0, 1))):
            self.lane_stmt(
                f"{name}[{r * self.vb} + _l] = "
                f"{self.ref(a, i)} * {self.ref(b, j)} - "
                f"{self.ref(a, j)} * {self.ref(b, i)};"
            )

    def _op_outer(self, ins: Instr) -> None:
        a, b = ins.args
        res = ins.result
        n = self.size_of(a)
        m = self.size_of(b)
        name = self.names.val(res)
        i = self.names.fresh("i")
        j = self.names.fresh("j")
        self.emit(f"for (int {i} = 0; {i} < {n}; {i}++)")
        self.emit(f"for (int {j} = 0; {j} < {m}; {j}++) {{")
        self.indent += 1
        self.lane_stmt(
            f"{name}[({i} * {m} + {j}) * DD_VB + _l] = "
            f"{self.ref(a, i)} * {self.ref(b, j)};"
        )
        self.indent -= 1
        self.emit("}")

    def _op_trace(self, ins: Instr) -> None:
        (a,) = ins.args
        res = ins.result
        n = a.ty.shape[0]
        terms = " + ".join(self.ref(a, i * n + i) for i in range(n))
        self.lane_stmt(f"{self.names.val(res)}[_l] = {terms};")

    def _op_transpose(self, ins: Instr) -> None:
        (a,) = ins.args
        res = ins.result
        r, c = a.ty.shape
        name = self.names.val(res)
        for i in range(r):
            for j in range(c):
                self.lane_stmt(
                    f"{name}[{(j * r + i) * self.vb} + _l] = {self.ref(a, i * c + j)};"
                )

    def _op_det(self, ins: Instr) -> None:
        (a,) = ins.args
        res = ins.result
        n = a.ty.shape[0]
        name = self.names.val(res)
        if n == 1:
            self.lane_stmt(f"{name}[_l] = {self.ref(a, 0)};")
        elif n == 2:
            self.lane_stmt(
                f"{name}[_l] = {self.ref(a, 0)} * {self.ref(a, 3)} - "
                f"{self.ref(a, 1)} * {self.ref(a, 2)};"
            )
        elif n == 3:
            # inline dd_det3 with identical parenthesization
            m = [self.ref(a, i) for i in range(9)]
            self.lane_stmt(
                f"{name}[_l] = {m[0]} * ({m[4]} * {m[8]} - {m[5]} * {m[7]}) - "
                f"{m[1]} * ({m[3]} * {m[8]} - {m[5]} * {m[6]}) + "
                f"{m[2]} * ({m[3]} * {m[7]} - {m[4]} * {m[6]});"
            )
        else:
            self.fail(f"det of {n}x{n} matrix is not supported")

    def _op_norm(self, ins: Instr) -> None:
        (a,) = ins.args
        res = ins.result
        order = ins.attrs.get("order", a.ty.order if isinstance(a.ty, TensorTy) else 0)
        name = self.names.val(res)
        if order == 0:
            self.lane_stmt(f"{name}[_l] = dd_fabs({self.ref(a)});")
            return
        n = self.size_of(a)
        chain = " + ".join(f"{self.ref(a, k)} * {self.ref(a, k)}" for k in range(n))
        self.lane_stmt(f"{name}[_l] = dd_sqrt({chain});")

    def _lanewise_helper(self, ins: Instr, call_fn) -> None:
        """Per-lane AoS extract -> helper call -> SoA insert, for the eigen/
        normalize helpers that are intrinsically scalar per strand.

        ``call_fn(in_name, out_name)`` returns the C call statement."""
        (a,) = ins.args
        res = ins.result
        in_sz = self.size_of(a)
        out_sz = self.size_of(res)
        e = self.names.fresh("e")
        self.lane_open(simd=False)
        self.emit(f"dd_real _in[{in_sz}];")
        self.emit(f"dd_real _out[{out_sz}];")
        self.emit(
            f"for (int {e} = 0; {e} < {in_sz}; {e}++) _in[{e}] = {self.ref(a, e)};"
        )
        self.emit(call_fn("_in", "_out"))
        name = self.names.val(res)
        if self.is_scalar_val(res):
            self.emit(f"{name}[_l] = _out[0];")
        else:
            self.emit(
                f"for (int {e} = 0; {e} < {out_sz}; {e}++) "
                f"{name}[({e}) * DD_VB + _l] = _out[{e}];"
            )
        self.lane_close()

    def _op_normalize_v(self, ins: Instr) -> None:
        n = self.size_of(ins.args[0])
        self._lanewise_helper(ins, lambda i, o: f"dd_normalize({i}, {n}, {o});")

    def _sym_helper(self, ins: Instr, stem: str) -> None:
        (a,) = ins.args
        n = a.ty.shape[0]
        if n not in (2, 3):
            self.fail(f"{stem} of {n}x{n} matrix is not supported")

        def call(i, o):
            return f"dd_{stem}{n}(_s, {o});"

        # symmetrize into _s inside the per-lane block, then call the helper
        res = ins.result
        out_sz = self.size_of(res)
        e = self.names.fresh("e")
        i = self.names.fresh("i")
        j = self.names.fresh("j")
        self.lane_open(simd=False)
        self.emit(f"dd_real _s[{n * n}];")
        self.emit(f"dd_real _out[{out_sz}];")
        self.emit(f"for (int {i} = 0; {i} < {n}; {i}++)")
        self.emit(
            f"    for (int {j} = 0; {j} < {n}; {j}++) "
            f"_s[{i} * {n} + {j}] = 0.5 * ({self.ref(a, f'{i} * {n} + {j}')} + "
            f"{self.ref(a, f'{j} * {n} + {i}')});"
        )
        self.emit(call("_s", "_out"))
        name = self.names.val(res)
        self.emit(
            f"for (int {e} = 0; {e} < {out_sz}; {e}++) "
            f"{name}[({e}) * DD_VB + _l] = _out[{e}];"
        )
        self.lane_close()

    def _op_evals(self, ins: Instr) -> None:
        self._sym_helper(ins, "evals")

    def _op_evecs(self, ins: Instr) -> None:
        self._sym_helper(ins, "evecs")

    # .. construction / indexing ............................................

    def _op_tensor_cons(self, ins: Instr) -> None:
        res = ins.result
        name = self.names.val(res)
        elem_size = self.size_of(res) // len(ins.args)
        for e, arg in enumerate(ins.args):
            if self.is_scalar_val(arg):
                self.lane_stmt(f"{name}[{e * elem_size * self.vb} + _l] = {self.ref(arg)};")
            else:
                i = self.names.fresh("i")
                self.emit(f"for (int {i} = 0; {i} < {elem_size}; {i}++) {{")
                self.indent += 1
                self.lane_stmt(
                    f"{name}[({e * elem_size} + {i}) * DD_VB + _l] = "
                    f"{self.ref(arg, i)};"
                )
                self.indent -= 1
                self.emit("}")

    def _op_vec_cons(self, ins: Instr) -> None:
        res = ins.result
        name = self.names.val(res)
        for i, arg in enumerate(ins.args):
            self.lane_stmt(f"{name}[{i * self.vb} + _l] = {self.ref(arg)};")

    def _op_tensor_index(self, ins: Instr) -> None:
        (a,) = ins.args
        res = ins.result
        indices = tuple(ins.attrs["indices"])
        shape = a.ty.shape
        if len(indices) > len(shape):
            self.fail("tensor_index with more indices than axes")
        # flat offset of the selected subtensor
        off = 0
        for pos, ind in enumerate(indices):
            off = off * shape[pos] + int(ind)
        rest = 1
        for s in shape[len(indices):]:
            rest *= s
        off *= rest
        name = self.names.val(res)
        if self.is_scalar_val(res):
            self.lane_stmt(f"{name}[_l] = {self.ref(a, off)};")
        else:
            i = self.names.fresh("i")
            self.emit(f"for (int {i} = 0; {i} < {rest}; {i}++) {{")
            self.indent += 1
            self.lane_stmt(
                f"{name}[({i}) * DD_VB + _l] = {self.ref(a, f'{off} + {i}')};"
            )
            self.indent -= 1
            self.emit("}")

    def _op_identity(self, ins: Instr) -> None:
        res = ins.result
        n = int(ins.attrs["n"])
        name = self.names.val(res)
        for i in range(n):
            for j in range(n):
                lit = self.flit(1.0 if i == j else 0.0)
                self.lane_stmt(f"{name}[{(i * n + j) * self.vb} + _l] = {lit};")

    # .. probing pipeline ....................................................

    def _op_to_index(self, ins: Instr) -> None:
        (pos,) = ins.args
        res = ins.result
        img = ins.attrs["image"]
        d, _ = self._image_info(img)
        name = self.names.val(res)
        porg = f"_org_{img}"
        pminv = f"_minv_{img}"
        for j in range(d):
            terms = " + ".join(
                f"({self.ref(pos, k)} - {porg}[{k}]) * {pminv}[{j * d + k}]"
                for k in range(d)
            )
            self.lane_stmt(f"{name}[{j * self.vb} + _l] = {terms};")

    def _op_floor_i(self, ins: Instr) -> None:
        (a,) = ins.args
        res = ins.result
        d = self.size_of(res)
        name = self.names.val(res)
        big = self.flit(1099511627776.0)
        i = self.names.fresh("i")
        self.emit(f"for (int {i} = 0; {i} < {d}; {i}++) {{")
        self.indent += 1
        self.lane_open()
        src = self.ref(a, i)
        self.emit(f"dd_real _c = isfinite({src}) ? {src} : 0.0;")
        self.emit(f"_c = dd_clamp(_c, -{big}, {big});")
        self.emit(f"{name}[({i}) * DD_VB + _l] = (int64_t)dd_floor(_c);")
        self.lane_close()
        self.indent -= 1
        self.emit("}")

    def _op_fract(self, ins: Instr) -> None:
        # Fractional part of the cleaned index-space position, matching
        # fields.probe.split_position (non-finite -> 0, clamp to +/-2^40).
        (a,) = ins.args
        res = ins.result
        d = self.size_of(res)
        name = self.names.val(res)
        big = self.flit(1099511627776.0)
        i = self.names.fresh("i")
        self.emit(f"for (int {i} = 0; {i} < {d}; {i}++) {{")
        self.indent += 1
        self.lane_open()
        src = self.ref(a, i)
        self.emit(f"dd_real _c = isfinite({src}) ? {src} : 0.0;")
        self.emit(f"_c = dd_clamp(_c, -{big}, {big});")
        self.emit(f"{name}[({i}) * DD_VB + _l] = _c - dd_floor(_c);")
        self.lane_close()
        self.indent -= 1
        self.emit("}")

    def _op_gather(self, ins: Instr) -> None:
        (n,) = ins.args
        res = ins.result
        img = ins.attrs["image"]
        s = int(ins.attrs["support"])
        d, tsize = self._image_info(img)
        w = 2 * s
        name = self.names.val(res)
        vox = f"_vox_{img}"
        szs = f"_sz_{img}"
        # Per-axis flat strides (innermost = tsize), then branchless-clamped
        # SoA offset tables holding clip(n + off, 0, size-1) * stride —
        # premultiplying here turns the per-tap address math into pure adds
        # (w**d taps each reusing the d*w products computed once).
        st_names = [self.names.fresh("st") for _ in range(d)]
        self.emit(f"const int64_t {st_names[d - 1]} = {tsize};")
        for ax in range(d - 2, -1, -1):
            self.emit(
                f"const int64_t {st_names[ax]} = "
                f"{szs}[{ax + 1}] * {st_names[ax + 1]};"
            )
        tables = []
        for ax in range(d):
            t = self.names.fresh("ix")
            tables.append(t)
            i = self.names.fresh("i")
            self.emit(f"int64_t {t}[{w} * DD_VB];")
            self.emit(f"for (int {i} = 0; {i} < {w}; {i}++) {{")
            self.indent += 1
            self.lane_open()
            self.emit(f"int64_t _x = {self.ref(n, ax)} + ({i} + {1 - s});")
            self.emit("_x = (_x < 0) ? 0 : _x;")
            self.emit(f"int64_t _mx = {szs}[{ax}] - 1;")
            self.emit("_x = (_x > _mx) ? _mx : _x;")
            self.emit(f"{t}[({i}) * DD_VB + _l] = _x * {st_names[ax]};")
            self.lane_close()
            self.indent -= 1
            self.emit("}")
        # Row-major tap loops; per tap, a lane-inner SIMD offset+copy.
        # Partial offset sums are hoisted per loop level so the innermost
        # tap adds exactly one table entry.  The output element counter _q
        # advances once per emitted element.
        q = self.names.fresh("q")
        self.emit(f"int64_t {q} = 0;")
        ivars = [self.names.fresh("i") for _ in range(d)]

        def table_ref(ax: int) -> str:
            return f"{tables[ax]}[({ivars[ax]}) * DD_VB + _l]"

        partial = None  # lane-_l ref of the hoisted offset prefix sum
        for ax in range(d):
            self.emit(f"for (int {ivars[ax]} = 0; {ivars[ax]} < {w}; {ivars[ax]}++) {{")
            self.indent += 1
            if 1 <= ax <= d - 2:
                po = self.names.fresh("po")
                self.emit(f"int64_t {po}[DD_VB];")
                self.lane_stmt(
                    f"{po}[_l] = {partial or table_ref(0)} + {table_ref(ax)};"
                )
                partial = f"{po}[_l]"
        if d == 1:
            off = table_ref(0)
        else:
            off = f"{partial or table_ref(0)} + {table_ref(d - 1)}"
        if tsize == 1:
            self.lane_stmt(f"{name}[({q}) * DD_VB + _l] = {vox}[{off}];")
            self.emit(f"{q}++;")
        else:
            t = self.names.fresh("t")
            self.emit(f"for (int {t} = 0; {t} < {tsize}; {t}++) {{")
            self.indent += 1
            self.lane_stmt(
                f"{name}[({q}) * DD_VB + _l] = {vox}[({off}) + {t}];"
            )
            self.emit(f"{q}++;")
            self.indent -= 1
            self.emit("}")
        for _ in range(d):
            self.indent -= 1
            self.emit("}")

    def _op_index_inside(self, ins: Instr) -> None:
        # Mirrors runtime.ops.index_inside: the argument is the *real*
        # index-space position; non-finite coordinates are outside by
        # definition, and the bounds test uses split_position's floor.
        # Branchless form (sticky _ok over unrolled axes) so the lane loop
        # vectorizes; identical results to the early-break original.
        (pos,) = ins.args
        res = ins.result
        img = ins.attrs["image"]
        s = int(ins.attrs["support"])
        d, _ = self._image_info(img)
        szs = f"_sz_{img}"
        name = self.names.val(res)
        big = self.flit(1099511627776.0)
        self.lane_open()
        self.emit("int _ok = 1;")
        for ax in range(d):
            p = self.ref(pos, ax)
            self.emit("{")
            self.indent += 1
            self.emit(f"dd_real _c = isfinite({p}) ? {p} : 0.0;")
            self.emit(f"_c = dd_clamp(_c, -{big}, {big});")
            self.emit("int64_t _nv = (int64_t)dd_floor(_c);")
            self.emit(
                f"_ok = _ok & (isfinite({p}) != 0) & (_nv >= {s - 1}) & "
                f"(_nv <= {szs}[{ax}] - 1 - {s});"
            )
            self.indent -= 1
            self.emit("}")
        self.emit(f"{name}[_l] = _ok;")
        self.lane_close()

    def _op_horner(self, ins: Instr) -> None:
        (f,) = ins.args
        res = ins.result
        coeffs = list(ins.attrs["coeffs"])
        name = self.names.val(res)
        if len(coeffs) == 1:
            self.lane_stmt(f"{name}[_l] = {self.flit(coeffs[0])};")
            return
        # One SIMD lane loop with a scalar register chain per lane.
        self.lane_open()
        self.emit(f"dd_real _f = {self.ref(f)};")
        self.emit(f"dd_real _h = {self.flit(coeffs[-1])};")
        for c in reversed(coeffs[:-1]):
            self.emit(f"_h = _h * _f + {self.flit(c)};")
        self.emit(f"{name}[_l] = _h;")
        self.lane_close()

    def _op_conv_contract(self, ins: Instr) -> None:
        vox = ins.args[0]
        weights = ins.args[1:]
        res = ins.result
        img = ins.attrs["image"]
        d, tsize = self._image_info(img)
        if len(weights) != d:
            self.fail("conv_contract weight count does not match image dim")
        w = self.size_of(weights[0])
        name = self.names.val(res)
        out_sz = self.size_of(res) if not self.is_scalar_val(res) else 1
        scalar = self.is_scalar_val(res)
        # zero-init, then accumulate tap by tap (same serial order per lane
        # as the scalar emitter)
        if scalar:
            self.lane_stmt(f"{name}[_l] = 0.0;")
        else:
            z = self.names.fresh("z")
            self.emit(f"for (int {z} = 0; {z} < {out_sz}; {z}++) {{")
            self.indent += 1
            self.lane_stmt(f"{name}[({z}) * DD_VB + _l] = 0.0;")
            self.indent -= 1
            self.emit("}")
        ivars = [self.names.fresh("i") for _ in range(d)]
        for ax in range(d):
            self.emit(f"for (int {ivars[ax]} = 0; {ivars[ax]} < {w}; {ivars[ax]}++) {{")
            self.indent += 1
        off = self.names.fresh("o")
        expr = ivars[0]
        for ax in range(1, d):
            expr = f"({expr} * {w} + {ivars[ax]})"
        self.emit(f"int64_t {off} = (int64_t)({expr}) * {tsize};")
        wprod = " * ".join(self.ref(weights[ax], ivars[ax]) for ax in range(d))
        if scalar:
            self.lane_stmt(f"{name}[_l] += {self.ref(vox, off)} * {wprod};")
        else:
            t = self.names.fresh("t")
            self.emit(f"for (int {t} = 0; {t} < {out_sz}; {t}++) {{")
            self.indent += 1
            self.lane_stmt(
                f"{name}[({t}) * DD_VB + _l] += "
                f"{self.ref(vox, f'{off} + {t}')} * {wprod};"
            )
            self.indent -= 1
            self.emit("}")
        for _ in range(d):
            self.indent -= 1
            self.emit("}")

    def _contract_step(self, out_name: str, out_scalar: bool, out_size: int,
                       in_ref, w_ref, w: int) -> None:
        """One axis contraction with a per-lane register accumulator:
        out[m] = sum_a in[a * out_size + m] * wv[a], ``a`` ascending (same
        serial order as the scalar emitter's += loop).

        ``in_ref(elem_expr)`` / ``w_ref(elem_expr)`` produce lane-_l refs.

        The ``a`` reduction is unrolled into a left-associated chain: gcc
        refuses to outer-vectorize a lane loop containing an inner serial
        reduction ("complicated access pattern"), but vectorizes the same
        straight-line chain trivially — and the association order matches
        the scalar += loop, preserving the 1e-12 oracle agreement."""
        if out_scalar:
            chain = " + ".join(f"{in_ref(a)} * {w_ref(a)}" for a in range(w))
            self.lane_stmt(f"{out_name}[_l] = {chain};")
            return
        m = self.names.fresh("m")
        self.emit(f"for (int {m} = 0; {m} < {out_size}; {m}++) {{")
        self.indent += 1
        chain = " + ".join(
            f"{in_ref(f'{a * out_size} + {m}')} * {w_ref(a)}" for a in range(w)
        )
        self.lane_stmt(f"{out_name}[({m}) * DD_VB + _l] = {chain};")
        self.indent -= 1
        self.emit("}")

    def _op_contract_axis(self, ins: Instr) -> None:
        x, wv = ins.args
        res = ins.result
        w = self.size_of(wv)
        in_sz = self.size_of(x)
        out_sz = 1 if self.is_scalar_val(res) else self.size_of(res)
        if in_sz != w * out_sz:
            self.fail("contract_axis size mismatch")
        self._contract_step(
            self.names.val(res), self.is_scalar_val(res), out_sz,
            lambda e: self.ref(x, e), lambda e: self.ref(wv, e), w,
        )

    def _op_probe_parts(self, ins: Instr) -> None:
        vox = ins.args[0]
        weights = ins.args[1:]
        specs = ins.attrs["specs"]
        img = ins.attrs["image"]
        d, tsize = self._image_info(img)
        w = self.size_of(weights[0]) if weights else 0
        # Prefix-memoized axis-at-a-time contraction, matching
        # runtime.ops.probe_parts: axes contract left to right and partial
        # sums are shared across results on their weight-index prefix.
        # cache: weight-index prefix -> (C name, size) of the partial sum
        cache: dict[tuple, str] = {}
        for ri, spec in enumerate(specs):
            spec = tuple(spec)
            if len(spec) != d:
                self.fail("probe_parts spec length does not match image dim")
            res = ins.results[ri]
            cur_name = self.names.val(vox)
            cur_val: Value | None = vox
            prefix: tuple = ()
            for step, wi in enumerate(spec):
                prefix = prefix + (wi,)
                is_last = step == d - 1
                out_size = (w ** (d - step - 1)) * tsize
                if is_last:
                    out_name = self.names.val(res)
                    out_is_scalar = self.is_scalar_val(res)
                else:
                    hit = cache.get(prefix)
                    if hit is not None:
                        cur_name = hit
                        cur_val = None
                        continue
                    out_name = self.names.fresh("pp")
                    self.emit(f"dd_real {out_name}[{out_size} * DD_VB];")
                    out_is_scalar = False
                wv = weights[wi]
                in_name = cur_name
                in_val = cur_val

                def in_ref(e, _n=in_name, _v=in_val):
                    if _v is not None:
                        return self.ref(_v, e)
                    return f"{_n}[({e}) * DD_VB + _l]"

                self._contract_step(
                    out_name, out_is_scalar, out_size,
                    in_ref, lambda e, _w=wv: self.ref(_w, e), w,
                )
                if not is_last:
                    cache[prefix] = out_name
                cur_name = out_name
                cur_val = res if is_last else None

    def _op_deriv_assemble(self, ins: Instr) -> None:
        parts = ins.args
        res = ins.result
        dim = int(ins.attrs["dim"])
        deriv = int(ins.attrs["deriv"])
        tshape = tuple(ins.attrs.get("tshape", ()))
        tlen = 1
        for s in tshape:
            tlen *= s
        name = self.names.val(res)
        ncomb = dim**deriv
        if len(parts) != ncomb:
            self.fail("deriv_assemble part count mismatch")
        if deriv == 0:
            (p,) = parts
            if self.is_scalar_val(res):
                self.lane_stmt(f"{name}[_l] = {self.ref(p)};")
            else:
                i = self.names.fresh("i")
                self.emit(f"for (int {i} = 0; {i} < {tlen}; {i}++) {{")
                self.indent += 1
                self.lane_stmt(f"{name}[({i}) * DD_VB + _l] = {self.ref(p, i)};")
                self.indent -= 1
                self.emit("}")
            return
        # result layout: tshape axes first, then deriv axes (runtime stacks
        # parts leading, reshapes to head+(dim,)*deriv+tshape, then moves the
        # deriv axes after tshape): out[t * ncomb + c] = parts[c][t]
        for c, p in enumerate(parts):
            if tlen == 1:
                self.lane_stmt(f"{name}[{c * self.vb} + _l] = {self.ref(p)};")
            else:
                t = self.names.fresh("t")
                self.emit(f"for (int {t} = 0; {t} < {tlen}; {t}++) {{")
                self.indent += 1
                self.lane_stmt(
                    f"{name}[({t} * {ncomb} + {c}) * DD_VB + _l] = {self.ref(p, t)};"
                )
                self.indent -= 1
                self.emit("}")

    def _op_grad_xform(self, ins: Instr) -> None:
        (a,) = ins.args
        res = ins.result
        img = ins.attrs["image"]
        deriv = int(ins.attrs["deriv"])
        d, _ = self._image_info(img)
        gxf = f"_gxf_{img}"
        name = self.names.val(res)
        if deriv == 0:
            if self.is_scalar_val(res):
                self.lane_stmt(f"{name}[_l] = {self.ref(a)};")
            else:
                sz = self.size_of(res)
                i = self.names.fresh("i")
                self.emit(f"for (int {i} = 0; {i} < {sz}; {i}++) {{")
                self.indent += 1
                self.lane_stmt(f"{name}[({i}) * DD_VB + _l] = {self.ref(a, i)};")
                self.indent -= 1
                self.emit("}")
            return
        total = self.size_of(res)
        # shape = tshape + (d,)*deriv; transform each deriv axis in turn:
        # dst[(o*d + j)*inner + m] = sum_k src[(o*d + k)*inner + m] * gxf[j*d+k]
        src_val: Value | None = a
        src_name = self.names.val(a)
        for pos in range(deriv):
            # deriv axes sit after the tensor axes; axis index from the right:
            inner = d ** (deriv - 1 - pos)
            blocks = total // (d * inner)
            if pos == deriv - 1:
                dst = name
            else:
                dst = self.names.fresh("gx")
                self.emit(f"dd_real {dst}[{total} * DD_VB];")
            o = self.names.fresh("o")
            j = self.names.fresh("j")
            m = self.names.fresh("m")
            self.emit(f"for (int {o} = 0; {o} < {blocks}; {o}++)")
            self.emit(f"for (int {j} = 0; {j} < {d}; {j}++)")
            self.emit(f"for (int {m} = 0; {m} < {inner}; {m}++) {{")
            self.indent += 1

            def src_ref(e, _v=src_val, _n=src_name):
                if _v is not None:
                    return self.ref(_v, e)
                return f"{_n}[({e}) * DD_VB + _l]"

            chain = " + ".join(
                f"{src_ref(f'(({o} * {d}) + {k}) * {inner} + {m}')} * "
                f"{gxf}[{j} * {d} + {k}]"
                for k in range(d)
            )
            self.lane_stmt(
                f"{dst}[((({o} * {d}) + {j}) * {inner} + {m}) * DD_VB + _l] = {chain};"
            )
            self.indent -= 1
            self.emit("}")
            src_name = dst
            src_val = None

    # -- control flow --------------------------------------------------------

    def _body_cost(self, body) -> int:
        """Blend-vs-branch weight of an IfRegion arm (see _HEAVY_OPS)."""
        cost = 0
        for item in body.items:
            if isinstance(item, Instr):
                cost += _HEAVY_OPS.get(item.op, 1)
            elif isinstance(item, IfRegion):
                cost += (
                    2
                    + self._body_cost(item.then_body)
                    + self._body_cost(item.else_body)
                    + len(item.phis)
                )
        return cost

    def _emit_region(self, region: IfRegion) -> None:
        """If-converted region: per-lane then/else masks (ANDed with the
        enclosing mask), both arms executed on all lanes — except that heavy
        arms keep a real `if (any lane)` branch — and branchless phi blends.
        """
        mt = self.names.fresh("mt")
        me = self.names.fresh("me")
        enc = self.mask_stack[-1] if self.mask_stack else None
        cexpr = self.ref(region.cond)
        self.emit(f"int {mt}[DD_VB];")
        self.emit(f"int {me}[DD_VB];")
        if enc is None:
            self.lane_stmt(f"{{ {mt}[_l] = ({cexpr}) != 0; {me}[_l] = !({cexpr}); }}")
        else:
            self.lane_stmt(
                f"{{ {mt}[_l] = {enc}[_l] && ({cexpr}); "
                f"{me}[_l] = {enc}[_l] && !({cexpr}); }}"
            )
        for mask, arm in ((mt, region.then_body), (me, region.else_body)):
            if not arm.items:
                continue
            guarded = self._body_cost(arm) >= _GUARD_MIN_COST
            if guarded:
                anyv = self.names.fresh("any")
                self.emit(f"int {anyv} = 0;")
                self.lane_stmt(f"{anyv} |= {mask}[_l];", simd=False)
                self.emit(f"if ({anyv}) {{")
                self.indent += 1
            self.mask_stack.append(mask)
            self._emit_body(arm)
            self.mask_stack.pop()
            if guarded:
                self.indent -= 1
                self.emit("}")
        for phi in region.phis:
            res = phi.result
            sz = self.size_of(res)
            tv, ev = phi.then_val, phi.else_val
            self._ew_loop(
                res,
                lambda i, _t=tv, _e=ev: (
                    f"{mt}[_l] ? {self._bcast_ref(_t, i, sz)} : "
                    f"{self._bcast_ref(_e, i, sz)}"
                ),
            )

    def _emit_body(self, body) -> None:
        for item in body.items:
            if isinstance(item, Instr):
                if item.op == "const":
                    continue  # hoisted
                self.emit("{")
                self.indent += 1
                self._emit_instr(item)
                self.indent -= 1
                self.emit("}")
            elif isinstance(item, IfRegion):
                self._emit_region(item)
            elif isinstance(item, Phi):
                self.fail("loose Phi outside IfRegion")
            else:
                self.fail(f"unknown body item {type(item).__name__}")

    def _declare_consts(self, body) -> None:
        """Hoist constants to initialized lane-invariant function-scope
        declarations (they are pure, so hoisting out of arms is safe)."""
        for item in body.items:
            if isinstance(item, Instr) and item.op == "const":
                self._declare_const(item)
            elif isinstance(item, IfRegion):
                self._declare_consts(item.then_body)
                self._declare_consts(item.else_body)

    # -- batch body -----------------------------------------------------------

    def _emit_batch_body(self) -> None:
        """The per-batch strand update over lanes ``_k0 .. _k0 + _n``.

        Emitted once and spliced twice by ``generate`` — into the main loop
        (where ``_n`` is the constant ``DD_VB``, so every lane loop has a
        compile-time trip count) and into the tail-batch block."""
        func = self.func
        n_globals = self.plan["n_globals"]
        n_state = self.plan["n_state"]

        self.emit("int64_t _lane[DD_VB];")
        self.emit("if (idx) {")
        self.indent += 1
        self.lane_stmt("_lane[_l] = idx[_k0 + _l];", simd=False)
        self.indent -= 1
        self.emit("} else {")
        self.indent += 1
        self.lane_stmt("_lane[_l] = _k0 + _l;", simd=False)
        self.indent -= 1
        self.emit("}")

        # state parameter loads (SoA gather by lane)
        for si in range(n_state):
            p = func.params[n_globals + si]
            ty = p.ty
            name = self.names.val(p)
            if isinstance(ty, TensorTy):
                rp = self.real_ptr_index[("state", si)]
                sz = _tensor_size(ty)
                self.sizes[p.id] = sz
                if ty.shape == ():
                    self.kinds[p.id] = "scalar"
                    self.emit(f"dd_real {name}[DD_VB];")
                    self.lane_stmt(f"{name}[_l] = _rp{rp}[_lane[_l]];")
                else:
                    self.kinds[p.id] = "array"
                    self.emit(f"dd_real {name}[{sz} * DD_VB];")
                    e = self.names.fresh("e")
                    self.emit(f"for (int {e} = 0; {e} < {sz}; {e}++) {{")
                    self.indent += 1
                    self.lane_stmt(
                        f"{name}[({e}) * DD_VB + _l] = "
                        f"_rp{rp}[_lane[_l] * {sz} + {e}];"
                    )
                    self.indent -= 1
                    self.emit("}")
            elif ty == INT:
                ip = self.int_ptr_index[("state", si)]
                self.kinds[p.id] = "scalar"
                self.sizes[p.id] = 1
                self.emit(f"int64_t {name}[DD_VB];")
                self.lane_stmt(f"{name}[_l] = _ip{ip}[_lane[_l]];")
            elif ty == BOOL:
                bp = self.bool_ptr_index[("state", si)]
                self.kinds[p.id] = "scalar"
                self.sizes[p.id] = 1
                self.emit(f"int {name}[DD_VB];")
                self.lane_stmt(f"{name}[_l] = _bp{bp}[_lane[_l]] != 0;")
            else:
                self.fail(f"unsupported state type {ty!r}")

        # hoisted declarations for all instruction results, then the body
        self._declare_results(func.body)
        self._emit_body(func.body)

        # writebacks: results[:-1] are the *written* state slots in order
        # (a prefix of the slots — immutable extras at the tail are never
        # returned), results[-1] is the strand status.
        results = func.results
        n_ret = self.plan["n_ret"]
        for si in range(n_ret):
            r = results[si]
            p_ty = func.params[n_globals + si].ty
            if isinstance(p_ty, TensorTy):
                rp = self.real_ptr_index[("state", si)]
                sz = _tensor_size(p_ty)
                if p_ty.shape == ():
                    self.lane_stmt(f"_rp{rp}[_lane[_l]] = {self.ref(r)};")
                else:
                    e = self.names.fresh("e")
                    self.emit(f"for (int {e} = 0; {e} < {sz}; {e}++) {{")
                    self.indent += 1
                    self.lane_stmt(
                        f"_rp{rp}[_lane[_l] * {sz} + {e}] = {self.ref(r, e)};"
                    )
                    self.indent -= 1
                    self.emit("}")
            elif p_ty == INT:
                ip = self.int_ptr_index[("state", si)]
                self.lane_stmt(f"_ip{ip}[_lane[_l]] = {self.ref(r)};")
            elif p_ty == BOOL:
                bp = self.bool_ptr_index[("state", si)]
                self.lane_stmt(
                    f"_bp{bp}[_lane[_l]] = (unsigned char)({self.ref(r)} != 0);"
                )
        status_ip = self.int_ptr_index[("status",)]
        self.lane_stmt(f"_ip{status_ip}[_lane[_l]] = {self.ref(results[-1])};")

    # -- top-level -----------------------------------------------------------

    def generate(self) -> tuple[str, dict]:
        self._build_plan()
        func = self.func
        plan = self.plan
        n_globals = plan["n_globals"]

        out: list[str] = [_prelude(self.single, self.vb)]
        out.append(
            "int dd_update(void **RP, int64_t **IP, unsigned char **BP,\n"
            "              const double *SC, const int64_t *IC,\n"
            "              const int64_t *idx, int64_t start, int64_t end) {"
        )
        self.lines = []
        self.indent = 1

        # pointer-table aliases (RP entries carry dd_real payloads).  The
        # binder refuses aliasing buffers (runtime/native.py), so restrict
        # is sound and unlocks vectorization of the indirect accesses.
        for i in range(len(plan["real_ptrs"])):
            self.emit(f"dd_real *restrict const _rp{i} = (dd_real *)RP[{i}];")
        for i in range(len(plan["int_ptrs"])):
            self.emit(f"int64_t *restrict const _ip{i} = IP[{i}];")
        for i in range(len(plan["bool_ptrs"])):
            self.emit(f"unsigned char *restrict const _bp{i} = BP[{i}];")

        # image metadata: SC stays double for both precisions; cast once into
        # dd_real locals so the hot loops never widen
        for img in plan["images"]:
            slot = self.images[img]
            d = slot.dim
            org_off = self.sc_index[("origin", img)]
            minv_off = self.sc_index[("minv", img)]
            gxf_off = self.sc_index[("gxf", img)]
            self.emit(f"dd_real _org_{img}[{d}];")
            self.emit(f"dd_real _minv_{img}[{d * d}];")
            self.emit(f"dd_real _gxf_{img}[{d * d}];")
            k = self.names.fresh("k")
            self.emit(
                f"for (int {k} = 0; {k} < {d}; {k}++) "
                f"_org_{img}[{k}] = (dd_real)SC[{org_off} + {k}];"
            )
            k = self.names.fresh("k")
            self.emit(f"for (int {k} = 0; {k} < {d * d}; {k}++) {{")
            self.emit(f"    _minv_{img}[{k}] = (dd_real)SC[{minv_off} + {k}];")
            self.emit(f"    _gxf_{img}[{k}] = (dd_real)SC[{gxf_off} + {k}];")
            self.emit("}")
            self.emit(
                f"const int64_t *const _sz_{img} = "
                f"IC + {self.ic_index[('sizes', img)]};"
            )
            rp = self.real_ptr_index[("image", img)]
            self.emit(f"const dd_real *const _vox_{img} = _rp{rp};")

        # globals are lane-invariant
        for gi in range(n_globals):
            p = func.params[gi]
            ty = p.ty
            name = self.names.val(p)
            self.uniform.add(p.id)
            if isinstance(ty, TensorTy) and ty.shape != ():
                rp = self.real_ptr_index[("global", gi)]
                sz = _tensor_size(ty)
                self.kinds[p.id] = "array"
                self.sizes[p.id] = sz
                self.emit(f"const dd_real *const {name} = _rp{rp};")
            elif isinstance(ty, TensorTy):
                self.kinds[p.id] = "scalar"
                self.sizes[p.id] = 1
                self.emit(
                    f"const dd_real {name} = "
                    f"(dd_real)SC[{self.sc_index[('global', gi)]}];"
                )
            elif ty == INT:
                self.kinds[p.id] = "scalar"
                self.sizes[p.id] = 1
                self.emit(
                    f"const int64_t {name} = IC[{self.ic_index[('global', gi)]}];"
                )
            elif ty == BOOL:
                self.kinds[p.id] = "scalar"
                self.sizes[p.id] = 1
                self.emit(
                    f"const int {name} = (int)IC[{self.ic_index[('global', gi)]}];"
                )
            else:
                self.fail(f"unsupported global type {ty!r}")

        # hoisted constants + zero-init marking, then capture the batch body
        # once and splice it into the main loop and the tail block
        self._declare_consts(func.body)
        self._collect_phi_operands(func.body)

        saved = self.lines
        self.lines = []
        self.indent = 2
        self._emit_batch_body()
        body_lines = self.lines
        self.lines = saved
        self.indent = 1

        self.emit("int64_t _k0;")
        self.emit("for (_k0 = start; _k0 + DD_VB <= end; _k0 += DD_VB) {")
        self.emit("    const int _n = DD_VB;")
        self.lines.extend(body_lines)
        self.emit("}")
        self.emit("if (_k0 < end) {")
        self.emit("    const int _n = (int)(end - _k0);")
        self.lines.extend(body_lines)
        self.emit("}")
        self.emit("return 0;")

        out.extend(self.lines)
        out.append("}")
        c_source = "\n".join(out) + "\n"

        # per-image metadata the binder needs (dim, tshape) — picklable
        plan_images = {}
        for img in plan["images"]:
            slot = self.images[img]
            plan_images[img] = {"dim": slot.dim, "tshape": tuple(slot.shape)}
        plan = dict(plan)
        plan["image_meta"] = plan_images
        return c_source, plan


def generate_c_module(
    high: Any, single: bool = False, batch: int | None = None
) -> tuple[str, dict]:
    """Emit (c_source, plan) for a compiled program's update function.

    ``high`` is any object with ``update_func`` (a LowIR :class:`Func`),
    ``images`` (name -> ImageSlot), ``concrete_globals``, ``state_order`` and
    ``extra_state`` attributes — in practice the HighProgram held by a built
    :class:`~repro.runtime.program.Program`.  ``single=True`` emits a
    ``float`` kernel (relaxed-tolerance path); ``batch`` overrides the
    strand-batch width (default 8 doubles / 16 floats; 1 gives the scalar
    baseline kernel).  Raises :class:`~repro.errors.CodegenError` when any
    construct cannot be translated.
    """
    func = getattr(high, "update_func", None)
    if not isinstance(func, Func):
        raise CodegenError("cgen: program has no LowIR update function")
    return _Emitter(high, single=single, batch=batch).generate()
