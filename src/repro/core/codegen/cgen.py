"""LowIR -> C emitter for the native backend.

``generate_c_module(high)`` walks the fully-lowered ``update`` function of a
compiled program and emits one self-contained C translation unit exposing a
single entry point::

    int dd_update(double **RP, int64_t **IP, unsigned char **BP,
                  const double *SC, const int64_t *IC,
                  const int64_t *idx, int64_t start, int64_t end);

``RP``/``IP``/``BP`` are flat per-strand buffers (real, int64, bool state plus
image voxel data and non-scalar globals), ``SC``/``IC`` carry scalar constants
(scalar globals, image origins / inverse transforms / sizes), ``idx`` is the
active-lane index list, and ``[start, end)`` the half-open lane range to
update.  The function returns 0 on success and 1 when an integer division by
zero occurs on a live lane (the caller re-raises ``RuntimeErrorD`` to match
the NumPy backend contract).

The emitted code reproduces the NumPy backend's semantics exactly (1e-12
differential agreement is asserted by the verify suite), including its NaN
conventions: ``min``/``max`` propagate NaN from either side, ``argmax``-style
selections treat NaN as greater-than-everything with first-wins ties, and the
eigen decompositions mirror :mod:`repro.tensors.eigen` operation for
operation.  Builds must use ``-ffp-contract=off`` so the compiler cannot fuse
multiply-adds the NumPy code performs as two roundings.

Alongside the C source, :func:`generate_c_module` returns a picklable *plan*
describing the buffer ABI: which state slot / image / global feeds each
pointer-table entry and each scalar-constant slot.  The runtime binder
(:mod:`repro.runtime.native`) fills the tables from live arrays using only
the plan, so the same compiled artifact can be reused across runs (and
across forked process workers) without re-walking the IR.

Anything the emitter cannot translate raises :class:`~repro.errors.CodegenError`;
``Program`` catches it and falls back to the NumPy backend.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from ...errors import CodegenError
from ..ir.base import Func, IfRegion, Instr, Phi, Value
from ..ty.types import BOOL, INT, TensorTy

__all__ = ["generate_c_module"]


# ---------------------------------------------------------------------------
# C helper prelude
# ---------------------------------------------------------------------------

# All helpers are static so multiple artifacts can coexist in one process.
# NaN behaviour is load-bearing throughout: see module docstring.
_PRELUDE = r"""
#include <stdint.h>
#include <math.h>

#define DD_PI 0x1.921fb54442d18p+1

static double dd_min(double a, double b) {
    if (isnan(a)) return a;
    if (isnan(b)) return b;
    return (a < b) ? a : b;
}

static double dd_max(double a, double b) {
    if (isnan(a)) return a;
    if (isnan(b)) return b;
    return (a > b) ? a : b;
}

static double dd_clamp(double x, double lo, double hi) {
    return dd_min(dd_max(x, lo), hi);
}

/* np.argmax tie-breaking: NaN counts as greater than everything, first
 * occurrence wins.  "x beats current best y" is therefore: x is NaN and y is
 * not, or x > y (false when either is NaN). */
static int dd_gt_nanfirst(double x, double y) {
    return (isnan(x) && !isnan(y)) || x > y;
}

/* np.argmin analog: NaN counts as less than everything, first wins. */
static int dd_lt_nanfirst(double x, double y) {
    return (isnan(x) && !isnan(y)) || x < y;
}

static void dd_cross3(const double *u, const double *v, double *r) {
    r[0] = u[1] * v[2] - u[2] * v[1];
    r[1] = u[2] * v[0] - u[0] * v[2];
    r[2] = u[0] * v[1] - u[1] * v[0];
}

static double dd_det3(const double *m) {
    return m[0] * (m[4] * m[8] - m[5] * m[7])
         - m[1] * (m[3] * m[8] - m[5] * m[6])
         + m[2] * (m[3] * m[7] - m[4] * m[6]);
}

/* Mirrors tensors.ops.normalize: scale by the max |component| (NaN
 * propagates through the max), then divide by the scaled norm; an all-zero
 * vector maps to the zero vector. */
static void dd_normalize(const double *u, int n, double *r) {
    double mx = fabs(u[0]);
    int _i;
    for (_i = 1; _i < n; _i++) {
        double av = fabs(u[_i]);
        if (isnan(av) || av > mx) mx = av;
    }
    {
        double ss = 0.0;
        for (_i = 0; _i < n; _i++) {
            double s = u[_i] / mx;
            ss += s * s;
        }
        {
            double nn = sqrt(ss);
            for (_i = 0; _i < n; _i++) {
                double out = (u[_i] / mx) / nn;
                r[_i] = (mx > 0.0) ? out : 0.0;
            }
        }
    }
}

/* Symmetric 2x2 eigenvalues, descending.  m = [a b; b d] row-major. */
static void dd_evals2(const double *m, double *lam) {
    double a = m[0], b = m[1], d = m[3];
    double mean = 0.5 * (a + d);
    double rad = sqrt(dd_max(0.25 * ((a - d) * (a - d)) + b * b, 0.0));
    lam[0] = mean + rad;
    lam[1] = mean - rad;
}

/* Symmetric 3x3 eigenvalues, descending (trigonometric method, Smith 1961).
 * Mirrors tensors.eigen._sym3 step for step, including the q*identity
 * subtraction (NaN q must poison every entry, so subtract q*(i==j) rather
 * than branching on the diagonal). */
static void dd_evals3(const double *m, double *lam) {
    double q = (m[0] + m[4] + m[8]) / 3.0;
    double a01 = m[1], a02 = m[2], a12 = m[5];
    double p2 = (m[0] - q) * (m[0] - q) + (m[4] - q) * (m[4] - q)
              + (m[8] - q) * (m[8] - q)
              + 2.0 * (a01 * a01 + a02 * a02 + a12 * a12);
    double p = sqrt(dd_max(p2 / 6.0, 0.0));
    double safe_p = (p > 0.0) ? p : 1.0;
    double dev[9];
    int _i, _j;
    for (_i = 0; _i < 3; _i++)
        for (_j = 0; _j < 3; _j++)
            dev[_i * 3 + _j] =
                (m[_i * 3 + _j] - q * ((_i == _j) ? 1.0 : 0.0)) / safe_p;
    {
        double half_det = dd_clamp(0.5 * dd_det3(dev), -1.0, 1.0);
        double phi = acos(half_det) / 3.0;
        double lam0 = q + 2.0 * p * cos(phi);
        double lam2 = q + 2.0 * p * cos(phi + 2.0 * DD_PI / 3.0);
        double lam1 = 3.0 * q - lam0 - lam2;
        if (p == 0.0) { lam0 = q; lam1 = q; lam2 = q; }
        lam[0] = lam0;
        lam[1] = lam1;
        lam[2] = lam2;
    }
}

/* Candidate eigenvector for eigenvalue lam of symmetric 3x3 m: the largest
 * cross product of row pairs of (m - lam I).  Returns the confidence value;
 * writes a unit vector (or the (1,0,0) fallback) into vec.  Mirrors
 * tensors.eigen._evec_raw including argmax NaN-first-wins selection. */
static double dd_evec_raw(const double *m, double lam, double *vec) {
    double a[9];
    double c01[3], c02[3], c12[3];
    double n01, n02, n12;
    double best[3];
    double len2, length, scale2, conf;
    int good, _i, _j;
    for (_i = 0; _i < 3; _i++)
        for (_j = 0; _j < 3; _j++)
            a[_i * 3 + _j] = m[_i * 3 + _j] - lam * ((_i == _j) ? 1.0 : 0.0);
    dd_cross3(a + 0, a + 3, c01);
    dd_cross3(a + 0, a + 6, c02);
    dd_cross3(a + 3, a + 6, c12);
    n01 = c01[0] * c01[0] + c01[1] * c01[1] + c01[2] * c01[2];
    n02 = c02[0] * c02[0] + c02[1] * c02[1] + c02[2] * c02[2];
    n12 = c12[0] * c12[0] + c12[1] * c12[1] + c12[2] * c12[2];
    /* argmax over [n01, n02, n12], NaN-as-greatest, first wins. */
    best[0] = c01[0]; best[1] = c01[1]; best[2] = c01[2];
    len2 = n01;
    if (dd_gt_nanfirst(n02, len2)) {
        best[0] = c02[0]; best[1] = c02[1]; best[2] = c02[2];
        len2 = n02;
    }
    if (dd_gt_nanfirst(n12, len2)) {
        best[0] = c12[0]; best[1] = c12[1]; best[2] = c12[2];
        len2 = n12;
    }
    length = sqrt(len2);
    scale2 = 0.0;
    for (_i = 0; _i < 9; _i++) scale2 += a[_i] * a[_i];
    conf = length / dd_max(scale2, 1e-24);
    good = length > 1e-24;
    if (good) {
        vec[0] = best[0] / length;
        vec[1] = best[1] / length;
        vec[2] = best[2] / length;
        return conf;
    }
    vec[0] = 1.0; vec[1] = 0.0; vec[2] = 0.0;
    return 0.0;
}

/* A unit vector orthogonal to v: cross v with the axis vector along v's
 * smallest |component| (argmin, NaN-as-least, first wins). */
static void dd_orth_unit(const double *v, double *r) {
    double av0 = fabs(v[0]), av1 = fabs(v[1]), av2 = fabs(v[2]);
    int ax = 0;
    double e[3];
    double len;
    if (dd_lt_nanfirst(av1, av0)) ax = 1;
    if (dd_lt_nanfirst(av2, (ax == 0) ? av0 : av1)) ax = 2;
    e[0] = 0.0; e[1] = 0.0; e[2] = 0.0;
    e[ax] = 1.0;
    dd_cross3(v, e, r);
    len = sqrt(r[0] * r[0] + r[1] * r[1] + r[2] * r[2]);
    len = (len > 0.0) ? len : 1.0;
    r[0] /= len; r[1] /= len; r[2] /= len;
}

/* Symmetric 2x2 eigenvectors as rows, matching tensors.eigen.evecs. */
static void dd_evecs2(const double *m, double *rows) {
    double a = m[0], b = m[1], d = m[3];
    double lam[2];
    int _i;
    dd_evals2(m, lam);
    for (_i = 0; _i < 2; _i++) {
        double li = lam[_i];
        double v1x = b, v1y = li - a;
        double v2x = li - d, v2y = b;
        double n1 = v1x * v1x + v1y * v1y;
        double n2 = v2x * v2x + v2y * v2y;
        int pick1 = n1 >= n2;
        double vx = pick1 ? v1x : v2x;
        double vy = pick1 ? v1y : v2y;
        double len = sqrt(dd_max(vx * vx + vy * vy, 0.0));
        int good = len > 1e-24;
        rows[_i * 2 + 0] = good ? vx / len : ((_i == 0) ? 1.0 : 0.0);
        rows[_i * 2 + 1] = good ? vy / len : ((_i == 0) ? 0.0 : 1.0);
    }
}

/* Symmetric 3x3 eigenvectors as rows, matching tensors.eigen.evecs:
 * raw candidates for lam0/lam2, orthogonal-fallbacks for weak confidence,
 * Gram-Schmidt v2 against v0, middle vector by cross product. */
static void dd_evecs3(const double *m, double *rows) {
    double lam[3];
    double v0[3], v2[3];
    double c0, c2;
    int w0, w2;
    double ortho0[3];
    double dotp, l2;
    double v1[3];
    int _i;
    dd_evals3(m, lam);
    c0 = dd_evec_raw(m, lam[0], v0);
    c2 = dd_evec_raw(m, lam[2], v2);
    w0 = c0 <= 1e-10;
    w2 = c2 <= 1e-10;
    if (w2 && !w0) {
        double ortho2[3];
        dd_orth_unit(v0, ortho2);
        v2[0] = ortho2[0]; v2[1] = ortho2[1]; v2[2] = ortho2[2];
    }
    if (w0) {
        dd_orth_unit(v2, ortho0);
        v0[0] = ortho0[0]; v0[1] = ortho0[1]; v0[2] = ortho0[2];
    } else {
        /* keep ortho0 available for the degenerate-v2 fallback below; it is
         * a pure function of v2 so compute it unconditionally. */
        dd_orth_unit(v2, ortho0);
    }
    dotp = v2[0] * v0[0] + v2[1] * v0[1] + v2[2] * v0[2];
    for (_i = 0; _i < 3; _i++) v2[_i] -= dotp * v0[_i];
    l2 = sqrt(v2[0] * v2[0] + v2[1] * v2[1] + v2[2] * v2[2]);
    if (l2 > 1e-24) {
        for (_i = 0; _i < 3; _i++) v2[_i] /= l2;
    } else {
        /* degenerate after projection: fall back to a vector orthogonal to
         * the *original* v2 — but v2 has been mutated, so the Python code's
         * equivalent (recomputing from the pre-Gram-Schmidt v2) is the
         * ortho0 captured above. */
        v2[0] = ortho0[0]; v2[1] = ortho0[1]; v2[2] = ortho0[2];
    }
    dd_cross3(v2, v0, v1);
    rows[0] = v0[0]; rows[1] = v0[1]; rows[2] = v0[2];
    rows[3] = v1[0]; rows[4] = v1[1]; rows[5] = v1[2];
    rows[6] = v2[0]; rows[7] = v2[1]; rows[8] = v2[2];
}
"""


# ---------------------------------------------------------------------------
# Type helpers
# ---------------------------------------------------------------------------


def _tensor_size(ty: Any) -> int:
    """Flat element count for a REAL/tensor type (1 for a scalar)."""
    n = 1
    for s in ty.shape:
        n *= s
    return n


def _val_size(ty: Any) -> int:
    """Flat element count of a value of any LowIR type tag."""
    if ty == INT or ty == BOOL or isinstance(ty, (type(INT), type(BOOL))):
        return 1
    if isinstance(ty, TensorTy):
        return _tensor_size(ty)
    if isinstance(ty, tuple):
        tag = ty[0]
        if tag == "ivec":
            return int(ty[1])
        if tag == "weights":
            return int(ty[1])
        # vox / part sizes depend on image metadata; resolved by callers that
        # carry the image table.
    raise CodegenError(f"cgen: cannot size type {ty!r}")


def _c_float(x: float) -> str:
    """An exact C literal for a Python float."""
    if math.isnan(x):
        return "NAN"
    if math.isinf(x):
        return "INFINITY" if x > 0 else "-INFINITY"
    if x == int(x) and abs(x) < 1e15:
        return f"{x:.1f}"
    return float(x).hex()


def _c_int(x: int) -> str:
    x = int(x)
    if x == -(2**63):
        return "(-9223372036854775807LL - 1)"
    return f"{x}LL"


class _Namer:
    """Stable C identifiers for SSA values and a counter for scratch names."""

    def __init__(self) -> None:
        self._uid = 0

    def val(self, v: Value) -> str:
        return f"v{v.id}"

    def fresh(self, stem: str) -> str:
        self._uid += 1
        return f"_{stem}{self._uid}"


# ---------------------------------------------------------------------------
# Emitter
# ---------------------------------------------------------------------------


class _Emitter:
    def __init__(self, high: Any) -> None:
        self.high = high
        self.func: Func = high.update_func
        self.images = dict(high.images)
        self.names = _Namer()
        self.lines: list[str] = []
        self.indent = 1
        # value id -> size of the C array variable (absent => scalar)
        self.sizes: dict[int, int] = {}
        # value id -> "array" | "scalar"; scalars referenced by bare name
        self.kinds: dict[int, str] = {}
        # plan tables, filled by _build_plan
        self.plan: dict[str, Any] = {}
        self.real_ptr_index: dict[Any, int] = {}
        self.int_ptr_index: dict[Any, int] = {}
        self.bool_ptr_index: dict[Any, int] = {}
        self.sc_index: dict[Any, int] = {}
        self.ic_index: dict[Any, int] = {}

    # -- plumbing -----------------------------------------------------------

    def emit(self, line: str = "") -> None:
        self.lines.append(("    " * self.indent) + line if line else "")

    def fail(self, msg: str) -> None:
        raise CodegenError(f"cgen: {msg}")

    # -- image metadata -----------------------------------------------------

    def _image_info(self, name: str) -> tuple[int, int]:
        """(dim, tensor element count) for an image by name."""
        slot = self.images.get(name)
        if slot is None:
            self.fail(f"unknown image {name!r}")
        tsize = 1
        for s in slot.shape:
            tsize *= s
        return slot.dim, tsize

    def _vox_size(self, ty: Any) -> int:
        tag = ty[0]
        if tag == "vox":
            _, img, s = ty
            dim, tsize = self._image_info(img)
            return ((2 * int(s)) ** dim) * tsize
        if tag == "part":
            _, img, s, axes = ty
            _, tsize = self._image_info(img)
            return ((2 * int(s)) ** int(axes)) * tsize
        self.fail(f"cannot size type {ty!r}")
        return 0  # unreachable

    def size_of(self, v: Value) -> int:
        sz = self.sizes.get(v.id)
        if sz is None:
            self.fail(f"value v{v.id} has no recorded size")
        return sz

    def compute_size(self, ty: Any) -> int:
        if isinstance(ty, tuple) and ty[0] in ("vox", "part"):
            return self._vox_size(ty)
        return _val_size(ty)

    # -- value references ---------------------------------------------------

    def ref(self, v: Value, i: str | int = 0) -> str:
        """C expression for element ``i`` of value ``v``."""
        name = self.names.val(v)
        if self.kinds.get(v.id) == "scalar":
            return name
        return f"{name}[{i}]"

    def is_scalar_val(self, v: Value) -> bool:
        return self.kinds.get(v.id) == "scalar"

    # -- plan construction --------------------------------------------------

    def _build_plan(self) -> None:
        high = self.high
        func = self.func
        used_images = sorted(
            {
                ins.attrs["image"]
                for ins in func.body.instructions()
                if isinstance(ins, Instr) and "image" in ins.attrs
            }
        )
        for name in used_images:
            if name not in self.images:
                self.fail(f"instruction references unknown image {name!r}")

        n_globals = len(high.concrete_globals)
        state_names = list(high.state_order) + list(high.extra_state)
        n_state = len(state_names)
        if len(func.params) != n_globals + n_state:
            self.fail(
                "update function arity mismatch: "
                f"{len(func.params)} params vs {n_globals} globals + {n_state} state"
            )
        # update returns one result per *written* state slot (a prefix of
        # the slots, in state order) plus status; immutable extras at the
        # tail are read-only parameters with no writeback
        n_ret = len(func.results) - 1
        if not 0 <= n_ret <= n_state:
            self.fail(
                f"update result arity mismatch: {len(func.results)} results "
                f"vs {n_state} state + status"
            )

        real_ptrs: list[tuple] = []
        int_ptrs: list[tuple] = []
        bool_ptrs: list[tuple] = []
        sc: list[tuple] = []
        ic: list[tuple] = []

        for name in used_images:
            self.real_ptr_index[("image", name)] = len(real_ptrs)
            real_ptrs.append(("image", name))

        for gi in range(n_globals):
            ty = func.params[gi].ty
            if isinstance(ty, TensorTy) and ty.shape != ():
                self.real_ptr_index[("global", gi)] = len(real_ptrs)
                real_ptrs.append(("global", gi))
            elif isinstance(ty, TensorTy):
                self.sc_index[("global", gi)] = len(sc)
                sc.append(("global", gi))
            elif ty == INT or ty == BOOL:
                self.ic_index[("global", gi)] = len(ic)
                ic.append(("global", gi))
            else:
                self.fail(f"unsupported global type {ty!r}")

        for si in range(n_state):
            ty = func.params[n_globals + si].ty
            if isinstance(ty, TensorTy):
                self.real_ptr_index[("state", si)] = len(real_ptrs)
                real_ptrs.append(("state", si))
            elif ty == INT:
                self.int_ptr_index[("state", si)] = len(int_ptrs)
                int_ptrs.append(("state", si))
            elif ty == BOOL:
                self.bool_ptr_index[("state", si)] = len(bool_ptrs)
                bool_ptrs.append(("state", si))
            else:
                self.fail(f"unsupported state type {ty!r}")

        # strand status lives in the int pointer table, last slot
        self.int_ptr_index[("status",)] = len(int_ptrs)
        int_ptrs.append(("status",))

        for name in used_images:
            slot = self.images[name]
            d = slot.dim
            self.sc_index[("origin", name)] = len(sc)
            sc.extend(("origin", name) for _ in range(d))
            self.sc_index[("minv", name)] = len(sc)
            sc.extend(("minv", name) for _ in range(d * d))
            self.sc_index[("gxf", name)] = len(sc)
            sc.extend(("gxf", name) for _ in range(d * d))
            self.ic_index[("sizes", name)] = len(ic)
            ic.extend(("sizes", name) for _ in range(d))

        self.plan = {
            "real_ptrs": real_ptrs,
            "int_ptrs": int_ptrs,
            "bool_ptrs": bool_ptrs,
            "sc": sc,
            "ic": ic,
            "images": used_images,
            "n_globals": n_globals,
            "n_state": n_state,
            "n_ret": n_ret,
        }

    # -- declarations -------------------------------------------------------

    def _declare_results(self, body) -> None:
        """Hoist C declarations for every Instr/Phi result in the body tree."""
        for item in body.items:
            if isinstance(item, Instr):
                for r in item.results:
                    self._declare_value(r)
            elif isinstance(item, IfRegion):
                self._declare_results(item.then_body)
                self._declare_results(item.else_body)
                for phi in item.phis:
                    self._declare_value(phi.result)

    def _declare_value(self, v: Value) -> None:
        ty = v.ty
        name = self.names.val(v)
        if ty == INT:
            self.kinds[v.id] = "scalar"
            self.sizes[v.id] = 1
            self.emit(f"int64_t {name};")
        elif ty == BOOL:
            self.kinds[v.id] = "scalar"
            self.sizes[v.id] = 1
            self.emit(f"int {name};")
        elif isinstance(ty, TensorTy):
            sz = _tensor_size(ty)
            self.sizes[v.id] = sz
            if ty.shape == ():
                self.kinds[v.id] = "scalar"
                self.emit(f"double {name};")
            else:
                self.kinds[v.id] = "array"
                self.emit(f"double {name}[{sz}];")
        elif isinstance(ty, tuple) and ty[0] == "ivec":
            self.kinds[v.id] = "array"
            self.sizes[v.id] = int(ty[1])
            self.emit(f"int64_t {name}[{int(ty[1])}];")
        elif isinstance(ty, tuple) and ty[0] in ("weights", "vox", "part"):
            sz = self.compute_size(ty)
            self.kinds[v.id] = "array"
            self.sizes[v.id] = sz
            self.emit(f"double {name}[{sz}];")
        else:
            self.fail(f"cannot declare value of type {ty!r}")

    # -- elementwise helpers ------------------------------------------------

    def _bcast_ref(self, v: Value, idx_expr: str, out_size: int) -> str:
        """Reference operand ``v`` inside an elementwise loop of ``out_size``.

        Mirrors runtime _align: a smaller operand of size ka is indexed by
        ``i / (out_size // ka)`` (trailing singleton padding)."""
        if self.is_scalar_val(v):
            return self.names.val(v)
        ka = self.size_of(v)
        if ka == out_size:
            return f"{self.names.val(v)}[{idx_expr}]"
        if ka == 1:
            return f"{self.names.val(v)}[0]"
        if out_size % ka != 0:
            self.fail(f"broadcast mismatch: operand size {ka} vs result {out_size}")
        step = out_size // ka
        return f"{self.names.val(v)}[({idx_expr}) / {step}]"

    def _ew_loop(self, res: Value, body_fn) -> None:
        """Emit ``for`` loop (or scalar statement) assigning each element of res.

        ``body_fn(idx_expr) -> rhs C expression``."""
        name = self.names.val(res)
        if self.is_scalar_val(res):
            self.emit(f"{name} = {body_fn('0')};")
            return
        sz = self.size_of(res)
        i = self.names.fresh("i")
        self.emit(f"for (int64_t {i} = 0; {i} < {sz}; {i}++) {name}[{i}] = {body_fn(i)};")

    # -- instruction dispatch -----------------------------------------------

    def _emit_instr(self, ins: Instr) -> None:
        op = ins.op
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            self.fail(f"unsupported LowIR op {op!r}")
        handler(ins)

    # .. constants ..........................................................

    def _op_const(self, ins: Instr) -> None:
        res = ins.result
        v = ins.attrs["value"]
        name = self.names.val(res)
        if res.ty == BOOL:
            self.emit(f"{name} = {1 if v else 0};")
        elif res.ty == INT:
            self.emit(f"{name} = {_c_int(v)};")
        elif isinstance(res.ty, TensorTy):
            try:
                arr = np.asarray(v, dtype=np.float64).reshape(-1)
            except (TypeError, ValueError) as exc:
                self.fail(f"const has non-numeric payload {v!r}: {exc}")
            if self.is_scalar_val(res):
                self.emit(f"{name} = {_c_float(float(arr[0]))};")
            else:
                for i, x in enumerate(arr):
                    self.emit(f"{name}[{i}] = {_c_float(float(x))};")
        else:
            self.fail(f"const of unsupported type {res.ty!r}")

    # .. arithmetic .........................................................

    def _binop_ew(self, ins: Instr, cop: str) -> None:
        a, b = ins.args
        res = ins.result
        sz = self.size_of(res)
        self._ew_loop(
            res,
            lambda i: f"{self._bcast_ref(a, i, sz)} {cop} {self._bcast_ref(b, i, sz)}",
        )

    def _op_add(self, ins: Instr) -> None:
        if ins.result.ty == INT:
            a, b = ins.args
            self.emit(f"{self.names.val(ins.result)} = {self.ref(a)} + {self.ref(b)};")
        else:
            self._binop_ew(ins, "+")

    def _op_sub(self, ins: Instr) -> None:
        if ins.result.ty == INT:
            a, b = ins.args
            self.emit(f"{self.names.val(ins.result)} = {self.ref(a)} - {self.ref(b)};")
        else:
            self._binop_ew(ins, "-")

    def _op_neg(self, ins: Instr) -> None:
        (a,) = ins.args
        res = ins.result
        if res.ty == INT:
            self.emit(f"{self.names.val(res)} = -{self.ref(a)};")
            return
        sz = self.size_of(res)
        self._ew_loop(res, lambda i: f"-{self._bcast_ref(a, i, sz)}")

    def _op_mul(self, ins: Instr) -> None:
        a, b = ins.args
        res = ins.result
        if res.ty == INT:
            self.emit(f"{self.names.val(res)} = {self.ref(a)} * {self.ref(b)};")
            return
        self._binop_ew(ins, "*")

    def _op_div(self, ins: Instr) -> None:
        a, b = ins.args
        res = ins.result
        if res.ty == INT:
            # A division executed on a live lane with a zero divisor is the
            # runtime "integer division by zero" fault; C truncation-toward-
            # zero matches the NumPy backend's idiv.
            bn = self.ref(b)
            self.emit(f"if ({bn} == 0) return 1;")
            self.emit(f"{self.names.val(res)} = {self.ref(a)} / {bn};")
            return
        self._binop_ew(ins, "/")

    def _op_mod(self, ins: Instr) -> None:
        a, b = ins.args
        res = ins.result
        if res.ty == INT:
            bn = self.ref(b)
            self.emit(f"if ({bn} == 0) return 1;")
            # imod = a - idiv(a,b)*b; C % has the same truncated semantics.
            self.emit(f"{self.names.val(res)} = {self.ref(a)} % {bn};")
            return
        self._ew_fmod(ins)

    def _ew_fmod(self, ins: Instr) -> None:
        a, b = ins.args
        res = ins.result
        sz = self.size_of(res)
        self._ew_loop(
            res,
            lambda i: f"fmod({self._bcast_ref(a, i, sz)}, {self._bcast_ref(b, i, sz)})",
        )

    _op_fmod = _ew_fmod

    def _op_pow(self, ins: Instr) -> None:
        a, b = ins.args
        res = ins.result
        if res.ty == INT:
            self.fail("integer pow is not supported by the native backend")
        if not (self.is_scalar_val(a) and self.is_scalar_val(b)):
            sz = self.size_of(res)
            self._ew_loop(
                res,
                lambda i: f"pow({self._bcast_ref(a, i, sz)}, {self._bcast_ref(b, i, sz)})",
            )
            return
        bexpr = self.ref(b)
        if b.ty == INT:
            bexpr = f"(double){bexpr}"
        self.emit(f"{self.names.val(res)} = pow({self.ref(a)}, {bexpr});")

    # .. comparisons / logic ................................................

    def _cmp(self, ins: Instr, cop: str) -> None:
        a, b = ins.args
        res = ins.result
        if not (self.is_scalar_val(a) and self.is_scalar_val(b)):
            self.fail(f"tensor comparison ({ins.op}) is not supported")
        self.emit(f"{self.names.val(res)} = {self.ref(a)} {cop} {self.ref(b)};")

    def _op_eq(self, ins: Instr) -> None:
        self._cmp(ins, "==")

    def _op_ne(self, ins: Instr) -> None:
        self._cmp(ins, "!=")

    def _op_lt(self, ins: Instr) -> None:
        self._cmp(ins, "<")

    def _op_le(self, ins: Instr) -> None:
        self._cmp(ins, "<=")

    def _op_gt(self, ins: Instr) -> None:
        self._cmp(ins, ">")

    def _op_ge(self, ins: Instr) -> None:
        self._cmp(ins, ">=")

    def _op_and(self, ins: Instr) -> None:
        a, b = ins.args
        self.emit(f"{self.names.val(ins.result)} = {self.ref(a)} && {self.ref(b)};")

    def _op_or(self, ins: Instr) -> None:
        a, b = ins.args
        self.emit(f"{self.names.val(ins.result)} = {self.ref(a)} || {self.ref(b)};")

    def _op_not(self, ins: Instr) -> None:
        (a,) = ins.args
        self.emit(f"{self.names.val(ins.result)} = !{self.ref(a)};")

    # .. math functions ......................................................

    def _mathfn(self, ins: Instr, cname: str) -> None:
        (a,) = ins.args
        res = ins.result
        sz = self.size_of(res)
        self._ew_loop(res, lambda i: f"{cname}({self._bcast_ref(a, i, sz)})")

    def _op_sin(self, ins):
        self._mathfn(ins, "sin")

    def _op_cos(self, ins):
        self._mathfn(ins, "cos")

    def _op_tan(self, ins):
        self._mathfn(ins, "tan")

    def _op_asin(self, ins):
        self._mathfn(ins, "asin")

    def _op_acos(self, ins):
        self._mathfn(ins, "acos")

    def _op_atan(self, ins):
        self._mathfn(ins, "atan")

    def _op_exp(self, ins):
        self._mathfn(ins, "exp")

    def _op_log(self, ins):
        self._mathfn(ins, "log")

    def _op_sqrt(self, ins):
        self._mathfn(ins, "sqrt")

    def _op_ceil(self, ins):
        self._mathfn(ins, "ceil")

    def _op_floor(self, ins):
        self._mathfn(ins, "floor")

    def _op_atan2(self, ins: Instr) -> None:
        a, b = ins.args
        res = ins.result
        sz = self.size_of(res)
        self._ew_loop(
            res,
            lambda i: f"atan2({self._bcast_ref(a, i, sz)}, {self._bcast_ref(b, i, sz)})",
        )

    def _op_abs(self, ins: Instr) -> None:
        (a,) = ins.args
        res = ins.result
        if res.ty == INT:
            an = self.ref(a)
            self.emit(f"{self.names.val(res)} = ({an} < 0) ? -{an} : {an};")
            return
        sz = self.size_of(res)
        self._ew_loop(res, lambda i: f"fabs({self._bcast_ref(a, i, sz)})")

    def _op_min(self, ins: Instr) -> None:
        a, b = ins.args
        res = ins.result
        if res.ty == INT:
            an, bn = self.ref(a), self.ref(b)
            self.emit(f"{self.names.val(res)} = ({an} < {bn}) ? {an} : {bn};")
            return
        sz = self.size_of(res)
        self._ew_loop(
            res,
            lambda i: f"dd_min({self._bcast_ref(a, i, sz)}, {self._bcast_ref(b, i, sz)})",
        )

    def _op_max(self, ins: Instr) -> None:
        a, b = ins.args
        res = ins.result
        if res.ty == INT:
            an, bn = self.ref(a), self.ref(b)
            self.emit(f"{self.names.val(res)} = ({an} > {bn}) ? {an} : {bn};")
            return
        sz = self.size_of(res)
        self._ew_loop(
            res,
            lambda i: f"dd_max({self._bcast_ref(a, i, sz)}, {self._bcast_ref(b, i, sz)})",
        )

    def _op_clamp(self, ins: Instr) -> None:
        # Diderot argument order: clamp(lo, hi, x)
        lo, hi, x = ins.args
        res = ins.result
        if res.ty == INT:
            xn, ln, hn = self.ref(x), self.ref(lo), self.ref(hi)
            lo_t = f"(({xn} > {ln}) ? {xn} : {ln})"
            self.emit(f"{self.names.val(res)} = ({lo_t} < {hn}) ? {lo_t} : {hn};")
            return
        sz = self.size_of(res)
        self._ew_loop(
            res,
            lambda i: (
                f"dd_clamp({self._bcast_ref(x, i, sz)}, "
                f"{self._bcast_ref(lo, i, sz)}, {self._bcast_ref(hi, i, sz)})"
            ),
        )

    def _op_lerp(self, ins: Instr) -> None:
        a, b, t = ins.args
        res = ins.result
        sz = self.size_of(res)
        self._ew_loop(
            res,
            lambda i: (
                f"{self._bcast_ref(a, i, sz)} + {self._bcast_ref(t, i, sz)} * "
                f"({self._bcast_ref(b, i, sz)} - {self._bcast_ref(a, i, sz)})"
            ),
        )

    def _op_select(self, ins: Instr) -> None:
        c, t, e = ins.args
        res = ins.result
        cn = self.ref(c)
        if res.ty == INT or res.ty == BOOL:
            self.emit(
                f"{self.names.val(res)} = {cn} ? {self.ref(t)} : {self.ref(e)};"
            )
            return
        sz = self.size_of(res)
        self._ew_loop(
            res,
            lambda i: f"{cn} ? {self._bcast_ref(t, i, sz)} : {self._bcast_ref(e, i, sz)}",
        )

    # .. conversions .........................................................

    def _op_int_to_real(self, ins: Instr) -> None:
        (a,) = ins.args
        self.emit(f"{self.names.val(ins.result)} = (double){self.ref(a)};")

    def _op_real_to_int(self, ins: Instr) -> None:
        (a,) = ins.args
        # np.trunc then int64: C's (int64_t) cast truncates toward zero.
        self.emit(f"{self.names.val(ins.result)} = (int64_t){self.ref(a)};")

    # .. tensor algebra ......................................................

    def _op_dot(self, ins: Instr) -> None:
        a, b = ins.args
        res = ins.result
        oa = a.ty.order if isinstance(a.ty, TensorTy) else 0
        ob = b.ty.order if isinstance(b.ty, TensorTy) else 0
        name = self.names.val(res)
        an, bn = self.names.val(a), self.names.val(b)
        if oa == 1 and ob == 1:
            n = self.size_of(a)
            k = self.names.fresh("k")
            self.emit(f"{name} = 0.0;")
            self.emit(f"for (int {k} = 0; {k} < {n}; {k}++) {name} += {an}[{k}] * {bn}[{k}];")
        elif oa == 2 and ob == 1:
            n = self.size_of(b)
            i = self.names.fresh("i")
            k = self.names.fresh("k")
            self.emit(f"for (int {i} = 0; {i} < {n}; {i}++) {{")
            self.emit(f"    {name}[{i}] = 0.0;")
            self.emit(
                f"    for (int {k} = 0; {k} < {n}; {k}++) "
                f"{name}[{i}] += {an}[{i} * {n} + {k}] * {bn}[{k}];"
            )
            self.emit("}")
        elif oa == 1 and ob == 2:
            n = self.size_of(a)
            j = self.names.fresh("j")
            k = self.names.fresh("k")
            self.emit(f"for (int {j} = 0; {j} < {n}; {j}++) {{")
            self.emit(f"    {name}[{j}] = 0.0;")
            self.emit(
                f"    for (int {k} = 0; {k} < {n}; {k}++) "
                f"{name}[{j}] += {an}[{k} * {n} + {j}] * {bn}[{k}];"
            )
            self.emit("}")
        elif oa == 2 and ob == 2:
            n = a.ty.shape[0]
            i = self.names.fresh("i")
            j = self.names.fresh("j")
            k = self.names.fresh("k")
            self.emit(f"for (int {i} = 0; {i} < {n}; {i}++)")
            self.emit(f"    for (int {j} = 0; {j} < {n}; {j}++) {{")
            self.emit(f"        {name}[{i} * {n} + {j}] = 0.0;")
            self.emit(
                f"        for (int {k} = 0; {k} < {n}; {k}++) "
                f"{name}[{i} * {n} + {j}] += "
                f"{an}[{i} * {n} + {k}] * {bn}[{k} * {n} + {j}];"
            )
            self.emit("    }")
        else:
            self.fail(f"dot of orders ({oa}, {ob}) is not supported")

    def _op_cross(self, ins: Instr) -> None:
        a, b = ins.args
        res = ins.result
        an, bn = self.names.val(a), self.names.val(b)
        if self.size_of(a) == 2:
            self.emit(
                f"{self.names.val(res)} = {an}[0] * {bn}[1] - {an}[1] * {bn}[0];"
            )
        else:
            self.emit(f"dd_cross3({an}, {bn}, {self.names.val(res)});")

    def _op_outer(self, ins: Instr) -> None:
        a, b = ins.args
        res = ins.result
        n = self.size_of(a)
        m = self.size_of(b)
        name = self.names.val(res)
        an, bn = self.names.val(a), self.names.val(b)
        i = self.names.fresh("i")
        j = self.names.fresh("j")
        self.emit(f"for (int {i} = 0; {i} < {n}; {i}++)")
        self.emit(
            f"    for (int {j} = 0; {j} < {m}; {j}++) "
            f"{name}[{i} * {m} + {j}] = {an}[{i}] * {bn}[{j}];"
        )

    def _op_trace(self, ins: Instr) -> None:
        (a,) = ins.args
        res = ins.result
        n = a.ty.shape[0]
        an = self.names.val(a)
        terms = " + ".join(f"{an}[{i * n + i}]" for i in range(n))
        self.emit(f"{self.names.val(res)} = {terms};")

    def _op_transpose(self, ins: Instr) -> None:
        (a,) = ins.args
        res = ins.result
        r, c = a.ty.shape
        name = self.names.val(res)
        an = self.names.val(a)
        for i in range(r):
            for j in range(c):
                self.emit(f"{name}[{j * r + i}] = {an}[{i * c + j}];")

    def _op_det(self, ins: Instr) -> None:
        (a,) = ins.args
        res = ins.result
        n = a.ty.shape[0]
        an = self.names.val(a)
        name = self.names.val(res)
        if n == 1:
            self.emit(f"{name} = {an}[0];")
        elif n == 2:
            self.emit(f"{name} = {an}[0] * {an}[3] - {an}[1] * {an}[2];")
        elif n == 3:
            self.emit(f"{name} = dd_det3({an});")
        else:
            self.fail(f"det of {n}x{n} matrix is not supported")

    def _op_norm(self, ins: Instr) -> None:
        (a,) = ins.args
        res = ins.result
        order = ins.attrs.get("order", a.ty.order if isinstance(a.ty, TensorTy) else 0)
        name = self.names.val(res)
        if order == 0:
            self.emit(f"{name} = fabs({self.ref(a)});")
            return
        n = self.size_of(a)
        an = self.names.val(a)
        k = self.names.fresh("k")
        acc = self.names.fresh("a")
        self.emit(f"double {acc} = 0.0;")
        self.emit(f"for (int {k} = 0; {k} < {n}; {k}++) {acc} += {an}[{k}] * {an}[{k}];")
        self.emit(f"{name} = sqrt({acc});")

    def _op_normalize_v(self, ins: Instr) -> None:
        (a,) = ins.args
        res = ins.result
        self.emit(
            f"dd_normalize({self.names.val(a)}, {self.size_of(a)}, {self.names.val(res)});"
        )

    def _symmetrize(self, a: Value, n: int) -> str:
        sym = self.names.fresh("s")
        an = self.names.val(a)
        self.emit(f"double {sym}[{n * n}];")
        i = self.names.fresh("i")
        j = self.names.fresh("j")
        self.emit(f"for (int {i} = 0; {i} < {n}; {i}++)")
        self.emit(
            f"    for (int {j} = 0; {j} < {n}; {j}++) "
            f"{sym}[{i} * {n} + {j}] = "
            f"0.5 * ({an}[{i} * {n} + {j}] + {an}[{j} * {n} + {i}]);"
        )
        return sym

    def _op_evals(self, ins: Instr) -> None:
        (a,) = ins.args
        res = ins.result
        n = a.ty.shape[0]
        if n not in (2, 3):
            self.fail(f"evals of {n}x{n} matrix is not supported")
        sym = self._symmetrize(a, n)
        self.emit(f"dd_evals{n}({sym}, {self.names.val(res)});")

    def _op_evecs(self, ins: Instr) -> None:
        (a,) = ins.args
        res = ins.result
        n = a.ty.shape[0]
        if n not in (2, 3):
            self.fail(f"evecs of {n}x{n} matrix is not supported")
        sym = self._symmetrize(a, n)
        self.emit(f"dd_evecs{n}({sym}, {self.names.val(res)});")

    # .. construction / indexing ............................................

    def _op_tensor_cons(self, ins: Instr) -> None:
        res = ins.result
        name = self.names.val(res)
        elem_size = self.size_of(res) // len(ins.args)
        for e, arg in enumerate(ins.args):
            if self.is_scalar_val(arg):
                self.emit(f"{name}[{e}] = {self.ref(arg)};")
            else:
                an = self.names.val(arg)
                i = self.names.fresh("i")
                self.emit(
                    f"for (int {i} = 0; {i} < {elem_size}; {i}++) "
                    f"{name}[{e} * {elem_size} + {i}] = {an}[{i}];"
                )

    def _op_vec_cons(self, ins: Instr) -> None:
        res = ins.result
        name = self.names.val(res)
        for i, arg in enumerate(ins.args):
            self.emit(f"{name}[{i}] = {self.ref(arg)};")

    def _op_tensor_index(self, ins: Instr) -> None:
        (a,) = ins.args
        res = ins.result
        indices = tuple(ins.attrs["indices"])
        shape = a.ty.shape
        if len(indices) > len(shape):
            self.fail("tensor_index with more indices than axes")
        # flat offset of the selected subtensor
        off = 0
        for pos, ind in enumerate(indices):
            off = off * shape[pos] + int(ind)
        rest = 1
        for s in shape[len(indices):]:
            rest *= s
        off *= rest
        an = self.names.val(a)
        name = self.names.val(res)
        if self.is_scalar_val(res):
            self.emit(f"{name} = {an}[{off}];")
        else:
            i = self.names.fresh("i")
            self.emit(
                f"for (int {i} = 0; {i} < {rest}; {i}++) {name}[{i}] = {an}[{off} + {i}];"
            )

    def _op_identity(self, ins: Instr) -> None:
        res = ins.result
        n = int(ins.attrs["n"])
        name = self.names.val(res)
        for i in range(n):
            for j in range(n):
                self.emit(f"{name}[{i * n + j}] = {'1.0' if i == j else '0.0'};")

    # .. probing pipeline ....................................................

    def _op_to_index(self, ins: Instr) -> None:
        (pos,) = ins.args
        res = ins.result
        img = ins.attrs["image"]
        d, _ = self._image_info(img)
        name = self.names.val(res)
        pn = self.names.val(pos)
        porg = f"_org_{img}"
        pminv = f"_minv_{img}"
        for j in range(d):
            terms = " + ".join(
                f"({pn}[{k}] - {porg}[{k}]) * {pminv}[{j * d + k}]" for k in range(d)
            )
            self.emit(f"{name}[{j}] = {terms};")

    def _op_floor_i(self, ins: Instr) -> None:
        (a,) = ins.args
        res = ins.result
        d = self.size_of(res)
        name = self.names.val(res)
        an = self.names.val(a)
        i = self.names.fresh("i")
        c = self.names.fresh("c")
        self.emit(f"for (int {i} = 0; {i} < {d}; {i}++) {{")
        self.emit(f"    double {c} = isfinite({an}[{i}]) ? {an}[{i}] : 0.0;")
        self.emit(f"    {c} = dd_clamp({c}, -1099511627776.0, 1099511627776.0);")
        self.emit(f"    {name}[{i}] = (int64_t)floor({c});")
        self.emit("}")

    def _op_fract(self, ins: Instr) -> None:
        # Fractional part of the cleaned index-space position, matching
        # fields.probe.split_position (non-finite -> 0, clamp to +/-2^40).
        (a,) = ins.args
        res = ins.result
        d = self.size_of(res)
        name = self.names.val(res)
        an = self.names.val(a)
        i = self.names.fresh("i")
        c = self.names.fresh("c")
        self.emit(f"for (int {i} = 0; {i} < {d}; {i}++) {{")
        self.emit(f"    double {c} = isfinite({an}[{i}]) ? {an}[{i}] : 0.0;")
        self.emit(f"    {c} = dd_clamp({c}, -1099511627776.0, 1099511627776.0);")
        self.emit(f"    {name}[{i}] = {c} - floor({c});")
        self.emit("}")

    def _op_gather(self, ins: Instr) -> None:
        (n,) = ins.args
        res = ins.result
        img = ins.attrs["image"]
        s = int(ins.attrs["support"])
        d, tsize = self._image_info(img)
        w = 2 * s
        name = self.names.val(res)
        nn = self.names.val(n)
        vox = f"_vox_{img}"
        szs = f"_sz_{img}"
        # Per-axis clamped index tables (clip(n + off, 0, size-1), offsets
        # 1-s .. s), then a row-major nested copy of tsize elements per tap.
        tables = []
        for ax in range(d):
            t = self.names.fresh("ix")
            tables.append(t)
            i = self.names.fresh("i")
            self.emit(f"int64_t {t}[{w}];")
            self.emit(f"for (int {i} = 0; {i} < {w}; {i}++) {{")
            self.emit(f"    int64_t _n = {nn}[{ax}] + ({i} + {1 - s});")
            self.emit("    if (_n < 0) _n = 0;")
            self.emit(f"    if (_n > {szs}[{ax}] - 1) _n = {szs}[{ax}] - 1;")
            self.emit(f"    {t}[{i}] = _n;")
            self.emit("}")
        q = self.names.fresh("q")
        self.emit(f"int64_t {q} = 0;")
        ivars = [self.names.fresh("i") for _ in range(d)]
        for ax in range(d):
            self.emit(
                "    " * 0
                + f"for (int {ivars[ax]} = 0; {ivars[ax]} < {w}; {ivars[ax]}++) {{"
            )
        # flat voxel offset: ((ix0*sz1 + ix1)*sz2 + ix2)*tsize
        off = self.names.fresh("o")
        expr = f"{tables[0]}[{ivars[0]}]"
        for ax in range(1, d):
            expr = f"({expr} * {szs}[{ax}] + {tables[ax]}[{ivars[ax]}])"
        self.emit(f"    int64_t {off} = {expr} * {tsize};")
        if tsize == 1:
            self.emit(f"    {name}[{q}++] = {vox}[{off}];")
        else:
            t = self.names.fresh("t")
            self.emit(
                f"    for (int {t} = 0; {t} < {tsize}; {t}++) "
                f"{name}[{q}++] = {vox}[{off} + {t}];"
            )
        for _ in range(d):
            self.emit("}")

    def _op_index_inside(self, ins: Instr) -> None:
        # Mirrors runtime.ops.index_inside: the argument is the *real*
        # index-space position; non-finite coordinates are outside by
        # definition, and the bounds test uses split_position's floor.
        (pos,) = ins.args
        res = ins.result
        img = ins.attrs["image"]
        s = int(ins.attrs["support"])
        d, _ = self._image_info(img)
        pn = self.names.val(pos)
        szs = f"_sz_{img}"
        name = self.names.val(res)
        ok = self.names.fresh("ok")
        ax = self.names.fresh("ax")
        c = self.names.fresh("c")
        nv = self.names.fresh("n")
        self.emit(f"int {ok} = 1;")
        self.emit(f"for (int {ax} = 0; {ax} < {d}; {ax}++) {{")
        self.emit(f"    if (!isfinite({pn}[{ax}])) {{ {ok} = 0; break; }}")
        self.emit(f"    double {c} = dd_clamp({pn}[{ax}], -1099511627776.0, 1099511627776.0);")
        self.emit(f"    int64_t {nv} = (int64_t)floor({c});")
        self.emit(f"    if ({nv} < {s - 1} || {nv} > {szs}[{ax}] - 1 - {s}) {{ {ok} = 0; break; }}")
        self.emit("}")
        self.emit(f"{name} = {ok};")

    def _op_horner(self, ins: Instr) -> None:
        (f,) = ins.args
        res = ins.result
        coeffs = list(ins.attrs["coeffs"])
        name = self.names.val(res)
        fn = self.ref(f)
        if len(coeffs) == 1:
            self.emit(f"{name} = {_c_float(float(coeffs[0]))};")
            return
        self.emit(f"{name} = {_c_float(float(coeffs[-1]))};")
        for c in reversed(coeffs[:-1]):
            self.emit(f"{name} = {name} * {fn} + {_c_float(float(c))};")

    def _op_conv_contract(self, ins: Instr) -> None:
        vox = ins.args[0]
        weights = ins.args[1:]
        res = ins.result
        img = ins.attrs["image"]
        d, tsize = self._image_info(img)
        if len(weights) != d:
            self.fail("conv_contract weight count does not match image dim")
        w = self.size_of(weights[0])
        name = self.names.val(res)
        vn = self.names.val(vox)
        out_sz = self.size_of(res) if not self.is_scalar_val(res) else 1
        if self.is_scalar_val(res):
            self.emit(f"{name} = 0.0;")
        else:
            z = self.names.fresh("z")
            self.emit(f"for (int {z} = 0; {z} < {out_sz}; {z}++) {name}[{z}] = 0.0;")
        ivars = [self.names.fresh("i") for _ in range(d)]
        for ax in range(d):
            self.emit(f"for (int {ivars[ax]} = 0; {ivars[ax]} < {w}; {ivars[ax]}++) {{")
        off = self.names.fresh("o")
        expr = ivars[0]
        for ax in range(1, d):
            expr = f"({expr} * {w} + {ivars[ax]})"
        self.emit(f"    int64_t {off} = (int64_t)({expr}) * {tsize};")
        wprod = " * ".join(
            f"{self.names.val(weights[ax])}[{ivars[ax]}]" for ax in range(d)
        )
        if self.is_scalar_val(res):
            self.emit(f"    {name} += {vn}[{off}] * {wprod};")
        else:
            t = self.names.fresh("t")
            self.emit(
                f"    for (int {t} = 0; {t} < {out_sz}; {t}++) "
                f"{name}[{t}] += {vn}[{off} + {t}] * {wprod};"
            )
        for _ in range(d):
            self.emit("}")

    def _op_contract_axis(self, ins: Instr) -> None:
        x, wv = ins.args
        res = ins.result
        w = self.size_of(wv)
        in_sz = self.size_of(x)
        out_sz = 1 if self.is_scalar_val(res) else self.size_of(res)
        if in_sz != w * out_sz:
            self.fail("contract_axis size mismatch")
        name = self.names.val(res)
        xn = self.names.val(x)
        wn = self.names.val(wv)
        if self.is_scalar_val(res):
            a = self.names.fresh("a")
            self.emit(f"{name} = 0.0;")
            self.emit(
                f"for (int {a} = 0; {a} < {w}; {a}++) {name} += {xn}[{a}] * {wn}[{a}];"
            )
            return
        z = self.names.fresh("z")
        self.emit(f"for (int {z} = 0; {z} < {out_sz}; {z}++) {name}[{z}] = 0.0;")
        a = self.names.fresh("a")
        m = self.names.fresh("m")
        self.emit(f"for (int {a} = 0; {a} < {w}; {a}++)")
        self.emit(
            f"    for (int {m} = 0; {m} < {out_sz}; {m}++) "
            f"{name}[{m}] += {xn}[{a} * {out_sz} + {m}] * {wn}[{a}];"
        )

    def _op_probe_parts(self, ins: Instr) -> None:
        vox = ins.args[0]
        weights = ins.args[1:]
        specs = ins.attrs["specs"]
        img = ins.attrs["image"]
        d, tsize = self._image_info(img)
        w = self.size_of(weights[0]) if weights else 0
        vn = self.names.val(vox)
        # Prefix-memoized axis-at-a-time contraction, matching
        # runtime.ops.probe_parts: axes contract left to right and partial
        # sums are shared across results on their weight-index prefix.
        # cache: weight-index prefix -> C name of the partial sum
        cache: dict[tuple, str] = {}
        for ri, spec in enumerate(specs):
            spec = tuple(spec)
            if len(spec) != d:
                self.fail("probe_parts spec length does not match image dim")
            res = ins.results[ri]
            cur_name = vn
            prefix: tuple = ()
            for step, wi in enumerate(spec):
                prefix = prefix + (wi,)
                is_last = step == d - 1
                out_size = (w ** (d - step - 1)) * tsize
                if is_last:
                    out_name = self.names.val(res)
                    out_is_scalar = self.is_scalar_val(res)
                else:
                    hit = cache.get(prefix)
                    if hit is not None:
                        cur_name = hit
                        continue
                    out_name = self.names.fresh("pp")
                    self.emit(f"double {out_name}[{out_size}];")
                    out_is_scalar = False
                wn = self.names.val(weights[wi])
                in_name = cur_name
                if out_is_scalar:
                    a = self.names.fresh("a")
                    self.emit(f"{out_name} = 0.0;")
                    self.emit(
                        f"for (int {a} = 0; {a} < {w}; {a}++) "
                        f"{out_name} += {in_name}[{a}] * {wn}[{a}];"
                    )
                else:
                    z = self.names.fresh("z")
                    self.emit(
                        f"for (int {z} = 0; {z} < {out_size}; {z}++) {out_name}[{z}] = 0.0;"
                    )
                    a = self.names.fresh("a")
                    m = self.names.fresh("m")
                    self.emit(f"for (int {a} = 0; {a} < {w}; {a}++)")
                    self.emit(
                        f"    for (int {m} = 0; {m} < {out_size}; {m}++) "
                        f"{out_name}[{m}] += {in_name}[{a} * {out_size} + {m}] * {wn}[{a}];"
                    )
                if not is_last:
                    cache[prefix] = out_name
                cur_name = out_name

    def _op_deriv_assemble(self, ins: Instr) -> None:
        parts = ins.args
        res = ins.result
        dim = int(ins.attrs["dim"])
        deriv = int(ins.attrs["deriv"])
        tshape = tuple(ins.attrs.get("tshape", ()))
        tlen = 1
        for s in tshape:
            tlen *= s
        name = self.names.val(res)
        ncomb = dim**deriv
        if len(parts) != ncomb:
            self.fail("deriv_assemble part count mismatch")
        if deriv == 0:
            (p,) = parts
            if self.is_scalar_val(res):
                self.emit(f"{name} = {self.ref(p)};")
            else:
                i = self.names.fresh("i")
                self.emit(
                    f"for (int {i} = 0; {i} < {tlen}; {i}++) "
                    f"{name}[{i}] = {self.names.val(p)}[{i}];"
                )
            return
        # result layout: tshape axes first, then deriv axes (runtime stacks
        # parts leading, reshapes to head+(dim,)*deriv+tshape, then moves the
        # deriv axes after tshape): out[t * ncomb + c] = parts[c][t]
        for c, p in enumerate(parts):
            if tlen == 1:
                self.emit(f"{name}[{c}] = {self.ref(p)};")
            else:
                t = self.names.fresh("t")
                self.emit(
                    f"for (int {t} = 0; {t} < {tlen}; {t}++) "
                    f"{name}[{t} * {ncomb} + {c}] = {self.names.val(p)}[{t}];"
                )

    def _op_grad_xform(self, ins: Instr) -> None:
        (a,) = ins.args
        res = ins.result
        img = ins.attrs["image"]
        deriv = int(ins.attrs["deriv"])
        d, _ = self._image_info(img)
        gxf = f"_gxf_{img}"
        name = self.names.val(res)
        if deriv == 0:
            if self.is_scalar_val(res):
                self.emit(f"{name} = {self.ref(a)};")
            else:
                sz = self.size_of(res)
                i = self.names.fresh("i")
                self.emit(
                    f"for (int {i} = 0; {i} < {sz}; {i}++) "
                    f"{name}[{i}] = {self.names.val(a)}[{i}];"
                )
            return
        total = self.size_of(res)
        # shape = tshape + (d,)*deriv; transform each deriv axis in turn:
        # dst[(o*d + j)*inner + m] = sum_k src[(o*d + k)*inner + m] * gxf[j*d+k]
        src = self.names.val(a)
        for pos in range(deriv):
            # deriv axes sit after the tensor axes; axis index from the right:
            inner = d ** (deriv - 1 - pos)
            blocks = total // (d * inner)
            if pos == deriv - 1:
                dst = name
            else:
                dst = self.names.fresh("gx")
                self.emit(f"double {dst}[{total}];")
            o = self.names.fresh("o")
            j = self.names.fresh("j")
            m = self.names.fresh("m")
            k = self.names.fresh("k")
            self.emit(f"for (int {o} = 0; {o} < {blocks}; {o}++)")
            self.emit(f"    for (int {j} = 0; {j} < {d}; {j}++)")
            self.emit(f"        for (int {m} = 0; {m} < {inner}; {m}++) {{")
            self.emit("            double _acc = 0.0;")
            self.emit(
                f"            for (int {k} = 0; {k} < {d}; {k}++) "
                f"_acc += {src}[(({o} * {d}) + {k}) * {inner} + {m}] * {gxf}[{j} * {d} + {k}];"
            )
            self.emit(f"            {dst}[(({o} * {d}) + {j}) * {inner} + {m}] = _acc;")
            self.emit("        }")
            src = dst

    # -- control flow --------------------------------------------------------

    def _copy_into(self, dst: Value, src: Value) -> None:
        name = self.names.val(dst)
        if self.is_scalar_val(dst):
            self.emit(f"{name} = {self.ref(src)};")
            return
        sz = self.size_of(dst)
        sn = self.names.val(src)
        i = self.names.fresh("i")
        self.emit(f"for (int {i} = 0; {i} < {sz}; {i}++) {name}[{i}] = {sn}[{i}];")

    def _emit_body(self, body) -> None:
        for item in body.items:
            if isinstance(item, Instr):
                self.emit("{")
                self.indent += 1
                self._emit_instr(item)
                self.indent -= 1
                self.emit("}")
            elif isinstance(item, IfRegion):
                self.emit(f"if ({self.ref(item.cond)}) {{")
                self.indent += 1
                self._emit_body(item.then_body)
                for phi in item.phis:
                    self._copy_into(phi.result, phi.then_val)
                self.indent -= 1
                self.emit("} else {")
                self.indent += 1
                self._emit_body(item.else_body)
                for phi in item.phis:
                    self._copy_into(phi.result, phi.else_val)
                self.indent -= 1
                self.emit("}")
            elif isinstance(item, Phi):
                self.fail("loose Phi outside IfRegion")
            else:
                self.fail(f"unknown body item {type(item).__name__}")

    # -- top-level -----------------------------------------------------------

    def generate(self) -> tuple[str, dict]:
        self._build_plan()
        func = self.func
        high = self.high
        plan = self.plan
        n_globals = plan["n_globals"]
        n_state = plan["n_state"]

        out: list[str] = [_PRELUDE]
        out.append(
            "int dd_update(double **RP, int64_t **IP, unsigned char **BP,\n"
            "              const double *SC, const int64_t *IC,\n"
            "              const int64_t *idx, int64_t start, int64_t end) {"
        )
        self.lines = []
        self.indent = 1

        # pointer-table aliases
        for i in range(len(plan["real_ptrs"])):
            self.emit(f"double *const _rp{i} = RP[{i}];")
        for i in range(len(plan["int_ptrs"])):
            self.emit(f"int64_t *const _ip{i} = IP[{i}];")
        for i in range(len(plan["bool_ptrs"])):
            self.emit(f"unsigned char *const _bp{i} = BP[{i}];")

        # image metadata aliases
        for img in plan["images"]:
            self.emit(
                f"const double *const _org_{img} = SC + {self.sc_index[('origin', img)]};"
            )
            self.emit(
                f"const double *const _minv_{img} = SC + {self.sc_index[('minv', img)]};"
            )
            self.emit(
                f"const double *const _gxf_{img} = SC + {self.sc_index[('gxf', img)]};"
            )
            self.emit(
                f"const int64_t *const _sz_{img} = IC + {self.ic_index[('sizes', img)]};"
            )
            rp = self.real_ptr_index[("image", img)]
            self.emit(f"const double *const _vox_{img} = _rp{rp};")

        # globals
        for gi in range(n_globals):
            p = func.params[gi]
            ty = p.ty
            name = self.names.val(p)
            if isinstance(ty, TensorTy) and ty.shape != ():
                rp = self.real_ptr_index[("global", gi)]
                sz = _tensor_size(ty)
                self.kinds[p.id] = "array"
                self.sizes[p.id] = sz
                self.emit(f"const double *const {name} = _rp{rp};")
            elif isinstance(ty, TensorTy):
                self.kinds[p.id] = "scalar"
                self.sizes[p.id] = 1
                self.emit(f"const double {name} = SC[{self.sc_index[('global', gi)]}];")
            elif ty == INT:
                self.kinds[p.id] = "scalar"
                self.sizes[p.id] = 1
                self.emit(f"const int64_t {name} = IC[{self.ic_index[('global', gi)]}];")
            elif ty == BOOL:
                self.kinds[p.id] = "scalar"
                self.sizes[p.id] = 1
                self.emit(f"const int {name} = (int)IC[{self.ic_index[('global', gi)]}];")
            else:
                self.fail(f"unsupported global type {ty!r}")

        # lane loop
        self.emit("int64_t _k;")
        self.emit("for (_k = start; _k < end; _k++) {")
        self.indent += 1
        self.emit("const int64_t _lane = idx[_k];")

        # state parameter loads
        for si in range(n_state):
            p = func.params[n_globals + si]
            ty = p.ty
            name = self.names.val(p)
            if isinstance(ty, TensorTy):
                rp = self.real_ptr_index[("state", si)]
                sz = _tensor_size(ty)
                self.sizes[p.id] = sz
                if ty.shape == ():
                    self.kinds[p.id] = "scalar"
                    self.emit(f"double {name} = _rp{rp}[_lane];")
                else:
                    self.kinds[p.id] = "array"
                    self.emit(f"double {name}[{sz}];")
                    i = self.names.fresh("i")
                    self.emit(
                        f"for (int {i} = 0; {i} < {sz}; {i}++) "
                        f"{name}[{i}] = _rp{rp}[_lane * {sz} + {i}];"
                    )
            elif ty == INT:
                ip = self.int_ptr_index[("state", si)]
                self.kinds[p.id] = "scalar"
                self.sizes[p.id] = 1
                self.emit(f"int64_t {name} = _ip{ip}[_lane];")
            elif ty == BOOL:
                bp = self.bool_ptr_index[("state", si)]
                self.kinds[p.id] = "scalar"
                self.sizes[p.id] = 1
                self.emit(f"int {name} = _bp{bp}[_lane] != 0;")
            else:
                self.fail(f"unsupported state type {ty!r}")

        # hoisted declarations for all instruction results
        self._declare_results(func.body)

        # body
        self._emit_body(func.body)

        # writebacks: results[:-1] are the *written* state slots in order
        # (a prefix of the slots — immutable extras at the tail are never
        # returned), results[-1] is the strand status.
        results = func.results
        n_ret = plan["n_ret"]
        for si in range(n_ret):
            r = results[si]
            p_ty = func.params[n_globals + si].ty
            if isinstance(p_ty, TensorTy):
                rp = self.real_ptr_index[("state", si)]
                sz = _tensor_size(p_ty)
                if p_ty.shape == ():
                    self.emit(f"_rp{rp}[_lane] = {self.ref(r)};")
                else:
                    i = self.names.fresh("i")
                    self.emit(
                        f"for (int {i} = 0; {i} < {sz}; {i}++) "
                        f"_rp{rp}[_lane * {sz} + {i}] = {self.names.val(r)}[{i}];"
                    )
            elif p_ty == INT:
                ip = self.int_ptr_index[("state", si)]
                self.emit(f"_ip{ip}[_lane] = {self.ref(r)};")
            elif p_ty == BOOL:
                bp = self.bool_ptr_index[("state", si)]
                self.emit(f"_bp{bp}[_lane] = (unsigned char)({self.ref(r)} != 0);")
        status_ip = self.int_ptr_index[("status",)]
        self.emit(f"_ip{status_ip}[_lane] = {self.ref(results[-1])};")

        self.indent -= 1
        self.emit("}")
        self.emit("return 0;")

        out.extend(self.lines)
        out.append("}")
        c_source = "\n".join(out) + "\n"

        # per-image metadata the binder needs (dim, tshape) — picklable
        plan_images = {}
        for img in plan["images"]:
            slot = self.images[img]
            plan_images[img] = {"dim": slot.dim, "tshape": tuple(slot.shape)}
        plan = dict(plan)
        plan["image_meta"] = plan_images
        return c_source, plan


def generate_c_module(high: Any) -> tuple[str, dict]:
    """Emit (c_source, plan) for a compiled program's update function.

    ``high`` is any object with ``update_func`` (a LowIR :class:`Func`),
    ``images`` (name -> ImageSlot), ``concrete_globals``, ``state_order`` and
    ``extra_state`` attributes — in practice the HighProgram held by a built
    :class:`~repro.runtime.program.Program`.  Raises
    :class:`~repro.errors.CodegenError` when any construct cannot be
    translated.
    """
    func = getattr(high, "update_func", None)
    if not isinstance(func, Func):
        raise CodegenError("cgen: program has no LowIR update function")
    return _Emitter(high).generate()
