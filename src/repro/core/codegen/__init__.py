"""Code generation backends.

* :mod:`repro.core.codegen.pygen` — the production backend: LowIR →
  Python/NumPy source, data-parallel across strands (DESIGN.md deviation
  2: the original's per-strand SSE vectorization becomes across-strand
  array programming).
* :mod:`repro.core.codegen.cgen` — the native backend: LowIR → a
  self-contained C translation unit (one strand-update function over flat
  ``double*`` buffers), compiled and loaded at build time by
  :mod:`repro.core.codegen.cbuild` via cffi; selected with ``--backend c``
  and verified against pygen as the differential oracle.
* :mod:`repro.core.codegen.interp` — a reference interpreter that executes
  HighIR directly against the :mod:`repro.fields` runtime objects,
  bypassing probe synthesis entirely; used to differentially test the
  lowering pipeline.
"""

from repro.core.codegen.pygen import generate_module

__all__ = ["generate_module"]
