"""The Diderot compiler — the paper's primary contribution.

The pipeline mirrors the three-phase structure of paper §5.1:

* **front-end** — :mod:`repro.core.syntax` (lexing/parsing),
  :mod:`repro.core.ty` (type checking with unification over shape and
  dimension variables), :mod:`repro.core.simple` (simplification to ANF
  with statically determined fields);
* **optimization and lowering** — :mod:`repro.core.ir` (HighIR, MidIR,
  LowIR) and :mod:`repro.core.xform` (field normalization, probe expansion,
  kernel-evaluation expansion, contraction, value numbering);
* **code generation** — :mod:`repro.core.codegen` (a NumPy backend
  vectorized across strands, plus a reference interpreter).

Use :func:`repro.core.driver.compile_program` (re-exported as
:func:`repro.compile_program`) to go from source text to a runnable
:class:`~repro.runtime.program.Program`.
"""

from repro.core.driver import compile_program, compile_to_source

__all__ = ["compile_program", "compile_to_source"]
