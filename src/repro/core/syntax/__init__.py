"""Surface syntax: source locations, tokens, lexer, AST, and parser."""

from repro.core.syntax.source import Span
from repro.core.syntax.lexer import tokenize
from repro.core.syntax.parser import parse_program
from repro.core.syntax import ast

__all__ = ["Span", "ast", "parse_program", "tokenize"]
