"""Source positions for diagnostics."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Span:
    """A half-open range of source text, for error messages.

    ``line`` and ``col`` are 1-based and refer to the start of the span.
    """

    line: int
    col: int
    end_line: int = 0
    end_col: int = 0

    def __str__(self) -> str:
        return f"{self.line}:{self.col}"

    def to(self, other: "Span") -> "Span":
        """The smallest span covering both ``self`` and ``other``."""
        return Span(self.line, self.col, other.end_line or other.line, other.end_col or other.col)
