"""Hand-written lexer for the Diderot surface language."""

from __future__ import annotations

from repro.core.syntax.source import Span
from repro.core.syntax.tokens import KEYWORDS, T, UNICODE_OPS, Token
from repro.errors import SyntaxErrorD

_PUNCT2 = {
    "..": T.DOTDOT,
    "==": T.EQEQ,
    "!=": T.NEQ,
    "<=": T.LEQ,
    ">=": T.GEQ,
    "&&": T.ANDAND,
    "||": T.OROR,
    "+=": T.PLUS_EQ,
    "-=": T.MINUS_EQ,
    "*=": T.TIMES_EQ,
    "/=": T.DIV_EQ,
}

_PUNCT1 = {
    "(": T.LPAREN, ")": T.RPAREN,
    "[": T.LBRACKET, "]": T.RBRACKET,
    "{": T.LBRACE, "}": T.RBRACE,
    ",": T.COMMA, ";": T.SEMI, ":": T.COLON,
    "#": T.HASH, "|": T.BAR,
    "=": T.ASSIGN,
    "+": T.PLUS, "-": T.MINUS, "*": T.TIMES, "/": T.DIV, "%": T.MOD,
    "^": T.CARET,
    "<": T.LT, ">": T.GT, "!": T.BANG,
    "@": T.CONVOLVE,
}


def tokenize(src: str) -> list[Token]:
    """Tokenize Diderot source text.

    Comments run from ``//`` to end of line (the paper's examples use
    C++-style comments).  Raises :class:`SyntaxErrorD` on stray characters
    or unterminated strings.
    """
    toks: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(src)

    def span(ncols: int = 1) -> Span:
        return Span(line, col, line, col + ncols)

    while i < n:
        c = src[i]
        # whitespace
        if c in " \t\r":
            i += 1
            col += 1
            continue
        if c == "\n":
            i += 1
            line += 1
            col = 1
            continue
        # comments
        if src.startswith("//", i):
            while i < n and src[i] != "\n":
                i += 1
            continue
        if src.startswith("/*", i):
            start = span()
            i += 2
            col += 2
            while i < n and not src.startswith("*/", i):
                if src[i] == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
                i += 1
            if i >= n:
                raise SyntaxErrorD("unterminated block comment", start)
            i += 2
            col += 2
            continue
        # identifiers / keywords
        if c.isalpha() or c == "_":
            j = i
            while j < n and (src[j].isalnum() or src[j] == "_"):
                j += 1
            text = src[i:j]
            sp = span(j - i)
            if text == "nabla":
                toks.append(Token(T.NABLA, text, sp))
            elif text == "π":
                # π is alphabetic, so it arrives here rather than in the
                # Unicode-operator branch; it is the builtin constant pi
                toks.append(Token(T.ID, "pi", sp))
            else:
                # Keywords are lexed as IDs; the parser matches them by text
                # and KEYWORDS only blocks their use as variable names.
                toks.append(Token(T.ID, text, sp))
            col += j - i
            i = j
            continue
        # numbers
        if c.isdigit() or (c == "." and i + 1 < n and src[i + 1].isdigit()):
            j = i
            is_real = False
            while j < n and src[j].isdigit():
                j += 1
            if j < n and src[j] == "." and not src.startswith("..", j):
                is_real = True
                j += 1
                while j < n and src[j].isdigit():
                    j += 1
            if j < n and src[j] in "eE":
                k = j + 1
                if k < n and src[k] in "+-":
                    k += 1
                if k < n and src[k].isdigit():
                    is_real = True
                    j = k
                    while j < n and src[j].isdigit():
                        j += 1
            text = src[i:j]
            sp = span(j - i)
            if is_real:
                toks.append(Token(T.REAL, text, sp, float(text)))
            else:
                toks.append(Token(T.INT, text, sp, int(text)))
            col += j - i
            i = j
            continue
        # strings
        if c == '"':
            j = i + 1
            buf = []
            while j < n and src[j] != '"':
                if src[j] == "\n":
                    raise SyntaxErrorD("unterminated string literal", span())
                if src[j] == "\\" and j + 1 < n:
                    esc = src[j + 1]
                    buf.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(esc, esc))
                    j += 2
                else:
                    buf.append(src[j])
                    j += 1
            if j >= n:
                raise SyntaxErrorD("unterminated string literal", span())
            text = src[i : j + 1]
            toks.append(Token(T.STRING, text, span(j + 1 - i), "".join(buf)))
            col += j + 1 - i
            i = j + 1
            continue
        # Unicode operators
        if c in UNICODE_OPS:
            toks.append(Token(UNICODE_OPS[c], c, span()))
            i += 1
            col += 1
            continue
        if c == "π":
            toks.append(Token(T.ID, "pi", span()))
            i += 1
            col += 1
            continue
        # two-char punctuation
        two = src[i : i + 2]
        if two in _PUNCT2:
            toks.append(Token(_PUNCT2[two], two, span(2)))
            i += 2
            col += 2
            continue
        # one-char punctuation
        if c in _PUNCT1:
            toks.append(Token(_PUNCT1[c], c, span()))
            i += 1
            col += 1
            continue
        raise SyntaxErrorD(f"unexpected character {c!r}", span())

    toks.append(Token(T.EOF, "", Span(line, col, line, col)))
    return toks
