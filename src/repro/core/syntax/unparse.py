"""Pretty-printer: AST → Diderot source text.

Supports tooling (program listings, LOC accounting, golden tests) and the
round-trip property ``parse(unparse(parse(src)))`` ≡ ``parse(src)`` that
the parser tests rely on.
"""

from __future__ import annotations

from repro.core.syntax import ast

#: binding strength per expression form, mirroring the parser's levels
_PREC = {
    "cond": 1,
    "||": 2,
    "&&": 3,
    "==": 4, "!=": 4, "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5,
    "*": 6, "/": 6, "%": 6, "⊛": 6, "•": 6, "×": 6, "⊗": 6,
    "unary": 7,
    "^": 8,
    "postfix": 9,
    "atom": 10,
}


def _ty(t: ast.TyExpr) -> str:
    if t.kind in ("bool", "int", "string", "real"):
        return t.kind
    if t.kind == "tensor":
        if len(t.shape) == 1 and t.shape[0] in (2, 3, 4):
            return f"vec{t.shape[0]}"
        return "tensor[" + ",".join(str(s) for s in t.shape) + "]"
    shape = "[" + ",".join(str(s) for s in t.shape) + "]"
    if t.kind == "image":
        return f"image({t.dim}){shape}"
    if t.kind == "kernel":
        return f"kernel#{t.continuity}"
    if t.kind == "field":
        return f"field#{t.continuity}({t.dim}){shape}"
    raise ValueError(f"unknown type kind {t.kind!r}")


def _fmt_real(v: float) -> str:
    text = repr(float(v))
    return text


def unparse_expr(e: ast.Expr, parent_prec: int = 0) -> str:
    text, prec = _expr(e)
    if prec < parent_prec:
        return f"({text})"
    return text


def _expr(e: ast.Expr) -> tuple[str, int]:
    if isinstance(e, ast.IntLit):
        return str(e.value), _PREC["atom"]
    if isinstance(e, ast.RealLit):
        return _fmt_real(e.value), _PREC["atom"]
    if isinstance(e, ast.BoolLit):
        return ("true" if e.value else "false"), _PREC["atom"]
    if isinstance(e, ast.StringLit):
        escaped = e.value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"', _PREC["atom"]
    if isinstance(e, ast.Var):
        return e.name, _PREC["atom"]
    if isinstance(e, ast.BinOp):
        prec = _PREC[e.op]
        left = unparse_expr(e.left, prec)
        right = unparse_expr(e.right, prec + 1)  # left-associative
        return f"{left} {e.op} {right}", prec
    if isinstance(e, ast.UnOp):
        prec = _PREC["unary"]
        operand = unparse_expr(e.operand, prec)
        op = e.op if e.op != "-" else "-"
        space = "" if op in ("-", "!") else ""
        return f"{op}{space}{operand}", prec
    if isinstance(e, ast.Cond):
        prec = _PREC["cond"]
        return (
            f"{unparse_expr(e.then_e, prec + 1)} if "
            f"{unparse_expr(e.cond, prec + 1)} else "
            f"{unparse_expr(e.else_e, prec)}",
            prec,
        )
    if isinstance(e, ast.Call):
        args = ", ".join(unparse_expr(a) for a in e.args)
        return f"{e.func}({args})", _PREC["postfix"]
    if isinstance(e, ast.Probe):
        field = unparse_expr(e.field, _PREC["postfix"] + 1)
        # a ∇-chain keeps its parens-free form: ∇F(x)
        if isinstance(e.field, ast.UnOp) and e.field.op.startswith("∇"):
            field = unparse_expr(e.field, 0)
        return f"{field}({unparse_expr(e.pos)})", _PREC["postfix"]
    if isinstance(e, ast.Index):
        base = unparse_expr(e.base, _PREC["postfix"])
        idx = ", ".join(unparse_expr(i) for i in e.indices)
        return f"{base}[{idx}]", _PREC["postfix"]
    if isinstance(e, ast.TensorCons):
        elems = ", ".join(unparse_expr(x) for x in e.elements)
        return f"[{elems}]", _PREC["atom"]
    if isinstance(e, ast.Norm):
        return f"|{unparse_expr(e.operand)}|", _PREC["atom"]
    if isinstance(e, ast.Identity):
        return f"identity[{e.n}]", _PREC["atom"]
    if isinstance(e, ast.Load):
        return f'load("{e.path}")', _PREC["atom"]
    raise ValueError(f"cannot unparse {type(e).__name__}")


def _stmt(s: ast.Stmt, indent: int, out: list[str]) -> None:
    pad = "    " * indent
    if isinstance(s, ast.Block):
        out.append(pad + "{")
        for inner in s.stmts:
            _stmt(inner, indent + 1, out)
        out.append(pad + "}")
    elif isinstance(s, ast.DeclStmt):
        out.append(f"{pad}{_ty(s.ty_expr)} {s.name} = {unparse_expr(s.init)};")
    elif isinstance(s, ast.AssignStmt):
        out.append(f"{pad}{s.name} {s.op} {unparse_expr(s.value)};")
    elif isinstance(s, ast.IfStmt):
        out.append(f"{pad}if ({unparse_expr(s.cond)})")
        _stmt_as_block(s.then_s, indent, out)
        if s.else_s is not None:
            out.append(f"{pad}else")
            _stmt_as_block(s.else_s, indent, out)
    elif isinstance(s, ast.StabilizeStmt):
        out.append(pad + "stabilize;")
    elif isinstance(s, ast.DieStmt):
        out.append(pad + "die;")
    else:
        raise ValueError(f"cannot unparse statement {type(s).__name__}")


def _stmt_as_block(s: ast.Stmt, indent: int, out: list[str]) -> None:
    """Emit a statement as an explicit block, avoiding dangling-else
    ambiguity in the output."""
    if isinstance(s, ast.Block):
        _stmt(s, indent, out)
    else:
        pad = "    " * indent
        out.append(pad + "{")
        _stmt(s, indent + 1, out)
        out.append(pad + "}")


def unparse(prog: ast.Program) -> str:
    """Render a full program as Diderot source text."""
    out: list[str] = []
    for g in prog.globals:
        prefix = "input " if g.is_input else ""
        init = f" = {unparse_expr(g.init)}" if g.init is not None else ""
        out.append(f"{prefix}{_ty(g.ty_expr)} {g.name}{init};")
    if prog.globals:
        out.append("")
    s = prog.strand
    params = ", ".join(f"{_ty(p.ty_expr)} {p.name}" for p in s.params)
    out.append(f"strand {s.name} ({params}) {{")
    for sv in s.state:
        prefix = "output " if sv.is_output else ""
        out.append(
            f"    {prefix}{_ty(sv.ty_expr)} {sv.name} = {unparse_expr(sv.init)};"
        )
    for m in s.methods:
        out.append(f"    {m.name} {{")
        for inner in m.body.stmts:
            _stmt(inner, 2, out)
        out.append("    }")
    out.append("}")
    out.append("")
    init = prog.initially
    open_b, close_b = ("[", "]") if init.kind == "grid" else ("{", "}")
    args = ", ".join(unparse_expr(a) for a in init.args)
    iters = ", ".join(
        f"{it.name} in {unparse_expr(it.lo)} .. {unparse_expr(it.hi)}"
        for it in init.iters
    )
    out.append(f"initially {open_b} {init.strand}({args}) | {iters} {close_b};")
    return "\n".join(out) + "\n"
