"""Token definitions for the Diderot surface language.

Diderot "uses Unicode characters to represent mathematical constants (π) and
a rich set of operations on tensors" (paper §3.2).  Every Unicode operator
also has an ASCII spelling so programs can be written in plain ASCII:

==========  =======  ==============================
operator    Unicode  ASCII alternative
==========  =======  ==============================
convolve    ``⊛``    ``@``
dot         ``•``    builtin function ``dot``
cross       ``×``    builtin function ``cross``
outer       ``⊗``    builtin function ``outer``
gradient    ``∇``    ``nabla`` keyword
pi          ``π``    builtin constant ``pi``
==========  =======  ==============================
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.core.syntax.source import Span


class T(Enum):
    """Token kinds."""

    ID = auto()
    INT = auto()
    REAL = auto()
    STRING = auto()

    # punctuation
    LPAREN = auto(); RPAREN = auto()
    LBRACKET = auto(); RBRACKET = auto()
    LBRACE = auto(); RBRACE = auto()
    COMMA = auto(); SEMI = auto(); COLON = auto()
    HASH = auto()          # '#'
    BAR = auto()           # '|'  (norm delimiter / comprehension separator)
    DOTDOT = auto()        # '..'

    # operators
    ASSIGN = auto()        # '='
    PLUS_EQ = auto(); MINUS_EQ = auto(); TIMES_EQ = auto(); DIV_EQ = auto()
    PLUS = auto(); MINUS = auto(); TIMES = auto(); DIV = auto(); MOD = auto()
    CARET = auto()         # '^'
    EQEQ = auto(); NEQ = auto()
    LT = auto(); LEQ = auto(); GT = auto(); GEQ = auto()
    ANDAND = auto(); OROR = auto(); BANG = auto()
    CONVOLVE = auto()      # '⊛' or '@'
    DOT_OP = auto()        # '•'
    CROSS_OP = auto()      # '×'
    OUTER_OP = auto()      # '⊗'
    NABLA = auto()         # '∇' or 'nabla'

    EOF = auto()


#: Reserved words of the language (paper §3).
KEYWORDS = {
    "bool", "die", "else", "false", "field", "identity", "if", "image", "in",
    "initially", "input", "int", "kernel", "load", "nabla", "output", "real",
    "stabilize", "strand", "string", "tensor", "true", "update", "vec2",
    "vec3", "vec4",
}

#: Single-character Unicode operator spellings.
UNICODE_OPS = {
    "⊛": T.CONVOLVE,
    "•": T.DOT_OP,
    "×": T.CROSS_OP,
    "⊗": T.OUTER_OP,
    "∇": T.NABLA,
}


@dataclass(frozen=True)
class Token:
    kind: T
    text: str
    span: Span
    value: object = None  # parsed payload for INT/REAL/STRING

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r}@{self.span})"
