"""Surface abstract syntax for Diderot programs (paper §3).

A program is three sections: global definitions, a strand definition, and an
``initially`` clause (§3.3).  Expression nodes carry an optional ``ty`` slot
filled in by the type checker, turning this into the "typed AST" of §5.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.syntax.source import Span


class Node:
    """Base class for all AST nodes."""

    span: Span


# --------------------------------------------------------------------------
# types as written in source (resolved by the type checker)


@dataclass
class TyExpr(Node):
    """A source-level type annotation.

    ``kind`` is one of ``bool int string real tensor vec image kernel
    field``; the remaining slots are meaningful per kind:

    * ``tensor``: ``shape`` — list of ints;
    * ``vec``: ``shape == [n]``;
    * ``image``/``field``: ``dim`` and ``shape``;
    * ``kernel``/``field``: ``continuity``.
    """

    kind: str
    span: Span
    shape: list[int] = field(default_factory=list)
    dim: Optional[int] = None
    continuity: Optional[int] = None


# --------------------------------------------------------------------------
# expressions


@dataclass
class Expr(Node):
    span: Span

    def __post_init__(self):
        self.ty = None  # filled by the type checker


@dataclass
class Var(Expr):
    name: str


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class RealLit(Expr):
    value: float


@dataclass
class BoolLit(Expr):
    value: bool


@dataclass
class StringLit(Expr):
    value: str


@dataclass
class BinOp(Expr):
    """Binary operation; ``op`` is the surface spelling.

    Ops: ``+ - * / % ^ == != < <= > >= && || ⊛ • × ⊗``.
    """

    op: str
    left: Expr
    right: Expr


@dataclass
class UnOp(Expr):
    """Unary operation; ``op`` in ``- ! ∇ ∇⊗ ∇• ∇×``."""

    op: str
    operand: Expr


@dataclass
class Cond(Expr):
    """Python-style conditional: ``then_e if cond else else_e`` (§3.3.2)."""

    then_e: Expr
    cond: Expr
    else_e: Expr


@dataclass
class Call(Expr):
    """Application ``f(args)``.

    ``f`` may name a builtin function, or a field variable — in which case
    this is a probe (§3.2); the type checker distinguishes.
    """

    func: str
    args: list[Expr]


@dataclass
class Probe(Expr):
    """Probe of a compound field expression: ``(∇F)(pos)``, ``(F1 if b
    else F2)(x)``.

    Simple probes of a field *variable* parse as :class:`Call`; this node
    covers probes whose field part is itself an expression.
    """

    field: Expr
    pos: Expr


@dataclass
class Index(Expr):
    """Tensor indexing ``e[i]`` / ``e[i, j]`` with constant indices."""

    base: Expr
    indices: list[Expr]


@dataclass
class TensorCons(Expr):
    """Tensor construction ``[e1, ..., en]`` (elements may be nested)."""

    elements: list[Expr]


@dataclass
class Norm(Expr):
    """``|e|``: absolute value / vector norm / Frobenius norm."""

    operand: Expr


@dataclass
class Identity(Expr):
    """``identity[n]``: the n×n identity matrix (Figure 3, line 9)."""

    n: int


@dataclass
class Load(Expr):
    """``load("file.nrrd")``: image loading, global section only (§3.3.1)."""

    path: str


# --------------------------------------------------------------------------
# statements


@dataclass
class Stmt(Node):
    span: Span


@dataclass
class Block(Stmt):
    stmts: list[Stmt]


@dataclass
class DeclStmt(Stmt):
    """Local variable declaration ``type x = e;``."""

    ty_expr: TyExpr
    name: str
    init: Expr


@dataclass
class AssignStmt(Stmt):
    """Assignment ``x = e;`` or compound ``x op= e;`` (op in ``+ - * /``)."""

    name: str
    op: str  # '=', '+=', '-=', '*=', '/='
    value: Expr


@dataclass
class IfStmt(Stmt):
    cond: Expr
    then_s: Stmt
    else_s: Optional[Stmt]


@dataclass
class StabilizeStmt(Stmt):
    """``stabilize;`` — the strand ceases to be updated (§3.3.2)."""


@dataclass
class DieStmt(Stmt):
    """``die;`` — the strand is removed and produces no output (§4.3)."""


# --------------------------------------------------------------------------
# declarations and program structure


@dataclass
class GlobalDecl(Node):
    """Global (optionally ``input``) variable definition (§3.3.1)."""

    ty_expr: TyExpr
    name: str
    init: Optional[Expr]
    is_input: bool
    span: Span


@dataclass
class Param(Node):
    ty_expr: TyExpr
    name: str
    span: Span


@dataclass
class StateVar(Node):
    """Strand state variable, possibly ``output`` (§3.3.2)."""

    ty_expr: TyExpr
    name: str
    init: Expr
    is_output: bool
    span: Span


@dataclass
class Method(Node):
    """``update`` or ``stabilize`` method."""

    name: str
    body: Block
    span: Span


@dataclass
class StrandDecl(Node):
    name: str
    params: list[Param]
    state: list[StateVar]
    methods: list[Method]
    span: Span

    def method(self, name: str) -> Optional[Method]:
        for m in self.methods:
            if m.name == name:
                return m
        return None


@dataclass
class IterRange(Node):
    """One comprehension iterator ``x in lo .. hi`` (inclusive bounds)."""

    name: str
    lo: Expr
    hi: Expr
    span: Span


@dataclass
class Initially(Node):
    """The initialization section (§3.3.3).

    ``kind`` is ``"grid"`` for ``[...]`` (output keeps the grid structure)
    or ``"collection"`` for ``{...}`` (output is the 1-D array of stable
    strands).  Iterators nest right-to-left: the *last* iterator varies
    fastest, matching the paper's Figure 1 where ``vi`` indexes rows and
    ``ui`` columns.
    """

    kind: str
    strand: str
    args: list[Expr]
    iters: list[IterRange]
    span: Span


@dataclass
class Program(Node):
    globals: list[GlobalDecl]
    strand: StrandDecl
    initially: Initially
    span: Span
