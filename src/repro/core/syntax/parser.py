"""Recursive-descent parser for the Diderot surface language (paper §3).

Grammar (C-like statements, mathematical expression operators):

.. code-block:: text

   program    ::= global* strand initially
   global     ::= 'input' type ID ('=' expr)? ';'
                | type ID '=' expr ';'
   strand     ::= 'strand' ID '(' params? ')' '{' state* method+ '}'
   state      ::= 'output'? type ID '=' expr ';'
   method     ::= ('update' | 'stabilize') block
   stmt       ::= block | decl | assign | if | 'stabilize' ';' | 'die' ';'
   initially  ::= 'initially' ('[' comp ']' | '{' comp '}') ';'
   comp       ::= ID '(' exprs ')' '|' iter (',' iter)*
   iter       ::= ID 'in' expr '..' expr

Expression precedence, loosest to tightest (the conditional uses Python's
``a if c else b`` syntax, §3.3.2):

.. code-block:: text

   cond > or > and > comparison > additive > multiplicative(* / % ⊛ • × ⊗)
        > unary(- ! ∇ ∇⊗ ∇• ∇×) > power(^) > postfix(call, index) > primary
"""

from __future__ import annotations

from repro.core.syntax import ast
from repro.core.syntax.lexer import tokenize
from repro.core.syntax.tokens import KEYWORDS, T, Token
from repro.errors import SyntaxErrorD

#: words that begin a type annotation
_TYPE_STARTERS = {
    "bool", "int", "string", "real", "vec2", "vec3", "vec4", "tensor",
    "image", "kernel", "field",
}

_CMP_OPS = {T.EQEQ: "==", T.NEQ: "!=", T.LT: "<", T.LEQ: "<=", T.GT: ">", T.GEQ: ">="}
_ADD_OPS = {T.PLUS: "+", T.MINUS: "-"}
_MUL_OPS = {
    T.TIMES: "*", T.DIV: "/", T.MOD: "%",
    T.CONVOLVE: "⊛", T.DOT_OP: "•", T.CROSS_OP: "×", T.OUTER_OP: "⊗",
}


class Parser:
    def __init__(self, src: str):
        self.toks = tokenize(src)
        self.pos = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.toks[self.pos]

    def peek(self, ahead: int = 1) -> Token:
        i = min(self.pos + ahead, len(self.toks) - 1)
        return self.toks[i]

    def advance(self) -> Token:
        tok = self.cur
        if tok.kind is not T.EOF:
            self.pos += 1
        return tok

    def expect(self, kind: T, what: str = "") -> Token:
        if self.cur.kind is not kind:
            want = what or kind.name
            raise SyntaxErrorD(
                f"expected {want}, found {self.cur.text or 'end of input'!r}",
                self.cur.span,
            )
        return self.advance()

    def expect_word(self, word: str) -> Token:
        if self.cur.kind is not T.ID or self.cur.text != word:
            raise SyntaxErrorD(
                f"expected {word!r}, found {self.cur.text or 'end of input'!r}",
                self.cur.span,
            )
        return self.advance()

    def at_word(self, word: str) -> bool:
        return self.cur.kind is T.ID and self.cur.text == word

    def eat_word(self, word: str) -> bool:
        if self.at_word(word):
            self.advance()
            return True
        return False

    def expect_name(self) -> Token:
        tok = self.expect(T.ID, "an identifier")
        if tok.text in KEYWORDS:
            raise SyntaxErrorD(f"{tok.text!r} is a reserved word", tok.span)
        return tok

    # -- program structure ----------------------------------------------------

    def parse_program(self) -> ast.Program:
        start = self.cur.span
        globals_: list[ast.GlobalDecl] = []
        while not self.at_word("strand"):
            if self.cur.kind is T.EOF:
                raise SyntaxErrorD("missing strand definition", self.cur.span)
            globals_.append(self.parse_global())
        strand = self.parse_strand()
        init = self.parse_initially()
        self.expect(T.EOF, "end of program")
        return ast.Program(globals_, strand, init, start.to(init.span))

    def parse_global(self) -> ast.GlobalDecl:
        start = self.cur.span
        is_input = self.eat_word("input")
        ty = self.parse_type()
        name = self.expect_name()
        init = None
        if self.cur.kind is T.ASSIGN:
            self.advance()
            init = self.parse_expr()
        elif not is_input:
            raise SyntaxErrorD(
                f"global {name.text!r} must be initialized (only 'input' "
                "globals may omit '= ...')",
                name.span,
            )
        semi = self.expect(T.SEMI, "';'")
        return ast.GlobalDecl(ty, name.text, init, is_input, start.to(semi.span))

    def parse_strand(self) -> ast.StrandDecl:
        start = self.expect_word("strand").span
        name = self.expect_name()
        self.expect(T.LPAREN, "'('")
        params: list[ast.Param] = []
        if self.cur.kind is not T.RPAREN:
            while True:
                pty = self.parse_type()
                pname = self.expect_name()
                params.append(ast.Param(pty, pname.text, pname.span))
                if self.cur.kind is T.COMMA:
                    self.advance()
                else:
                    break
        self.expect(T.RPAREN, "')'")
        self.expect(T.LBRACE, "'{'")
        state: list[ast.StateVar] = []
        methods: list[ast.Method] = []
        while self.cur.kind is not T.RBRACE:
            if self.at_word("update") or (
                self.at_word("stabilize") and self.peek().kind is T.LBRACE
            ):
                mname = self.advance().text
                body = self.parse_block()
                methods.append(ast.Method(mname, body, body.span))
            elif self.cur.kind is T.EOF:
                raise SyntaxErrorD("unterminated strand body", self.cur.span)
            else:
                if methods:
                    raise SyntaxErrorD(
                        "strand state variables must precede the methods",
                        self.cur.span,
                    )
                sv_start = self.cur.span
                is_output = self.eat_word("output")
                sty = self.parse_type()
                sname = self.expect_name()
                self.expect(T.ASSIGN, "'='")
                init = self.parse_expr()
                semi = self.expect(T.SEMI, "';'")
                state.append(
                    ast.StateVar(sty, sname.text, init, is_output, sv_start.to(semi.span))
                )
        end = self.expect(T.RBRACE, "'}'")
        if not any(m.name == "update" for m in methods):
            raise SyntaxErrorD(
                f"strand {name.text!r} has no update method", name.span
            )
        return ast.StrandDecl(name.text, params, state, methods, start.to(end.span))

    def parse_initially(self) -> ast.Initially:
        start = self.expect_word("initially").span
        if self.cur.kind is T.LBRACKET:
            kind, close = "grid", T.RBRACKET
        elif self.cur.kind is T.LBRACE:
            kind, close = "collection", T.RBRACE
        else:
            raise SyntaxErrorD("expected '[' or '{' after 'initially'", self.cur.span)
        self.advance()
        sname = self.expect_name()
        self.expect(T.LPAREN, "'('")
        args: list[ast.Expr] = []
        if self.cur.kind is not T.RPAREN:
            while True:
                args.append(self.parse_expr())
                if self.cur.kind is T.COMMA:
                    self.advance()
                else:
                    break
        self.expect(T.RPAREN, "')'")
        self.expect(T.BAR, "'|'")
        iters: list[ast.IterRange] = []
        while True:
            iname = self.expect_name()
            self.expect_word("in")
            lo = self.parse_range_bound()
            self.expect(T.DOTDOT, "'..'")
            hi = self.parse_range_bound()
            iters.append(ast.IterRange(iname.text, lo, hi, iname.span.to(hi.span)))
            if self.cur.kind is T.COMMA:
                self.advance()
            else:
                break
        self.expect(close, "comprehension close bracket")
        end = self.expect(T.SEMI, "';'")
        return ast.Initially(kind, sname.text, args, iters, start.to(end.span))

    def parse_range_bound(self) -> ast.Expr:
        # Range bounds stop at '..', which additive expressions don't contain.
        return self.parse_additive()

    # -- types -----------------------------------------------------------------

    def at_type(self) -> bool:
        return self.cur.kind is T.ID and self.cur.text in _TYPE_STARTERS

    def parse_type(self) -> ast.TyExpr:
        tok = self.expect(T.ID, "a type")
        word = tok.text
        sp = tok.span
        if word in ("bool", "int", "string", "real"):
            return ast.TyExpr(word, sp)
        if word in ("vec2", "vec3", "vec4"):
            return ast.TyExpr("tensor", sp, shape=[int(word[3])])
        if word == "tensor":
            shape = self.parse_shape()
            return ast.TyExpr("tensor", sp, shape=shape)
        if word == "image":
            self.expect(T.LPAREN, "'('")
            dim = self.expect(T.INT, "a dimension").value
            self.expect(T.RPAREN, "')'")
            shape = self.parse_shape()
            return ast.TyExpr("image", sp, shape=shape, dim=dim)
        if word == "kernel":
            self.expect(T.HASH, "'#'")
            k = self.expect(T.INT, "a continuity level").value
            return ast.TyExpr("kernel", sp, continuity=k)
        if word == "field":
            self.expect(T.HASH, "'#'")
            k = self.expect(T.INT, "a continuity level").value
            self.expect(T.LPAREN, "'('")
            dim = self.expect(T.INT, "a dimension").value
            self.expect(T.RPAREN, "')'")
            shape = self.parse_shape()
            return ast.TyExpr("field", sp, shape=shape, dim=dim, continuity=k)
        raise SyntaxErrorD(f"expected a type, found {word!r}", sp)

    def parse_shape(self) -> list[int]:
        self.expect(T.LBRACKET, "'['")
        shape: list[int] = []
        if self.cur.kind is not T.RBRACKET:
            while True:
                shape.append(self.expect(T.INT, "a shape dimension").value)
                if self.cur.kind is T.COMMA:
                    self.advance()
                else:
                    break
        self.expect(T.RBRACKET, "']'")
        return shape

    # -- statements --------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        start = self.expect(T.LBRACE, "'{'").span
        stmts: list[ast.Stmt] = []
        while self.cur.kind is not T.RBRACE:
            if self.cur.kind is T.EOF:
                raise SyntaxErrorD("unterminated block", self.cur.span)
            stmts.append(self.parse_stmt())
        end = self.expect(T.RBRACE, "'}'")
        return ast.Block(start.to(end.span), stmts)

    def parse_stmt(self) -> ast.Stmt:
        if self.cur.kind is T.LBRACE:
            return self.parse_block()
        if self.at_word("if"):
            return self.parse_if()
        if self.at_word("stabilize"):
            sp = self.advance().span
            end = self.expect(T.SEMI, "';'")
            return ast.StabilizeStmt(sp.to(end.span))
        if self.at_word("die"):
            sp = self.advance().span
            end = self.expect(T.SEMI, "';'")
            return ast.DieStmt(sp.to(end.span))
        if self.at_type():
            start = self.cur.span
            ty = self.parse_type()
            name = self.expect_name()
            self.expect(T.ASSIGN, "'='")
            init = self.parse_expr()
            end = self.expect(T.SEMI, "';'")
            return ast.DeclStmt(start.to(end.span), ty, name.text, init)
        # assignment
        name = self.expect_name()
        opmap = {
            T.ASSIGN: "=", T.PLUS_EQ: "+=", T.MINUS_EQ: "-=",
            T.TIMES_EQ: "*=", T.DIV_EQ: "/=",
        }
        if self.cur.kind not in opmap:
            raise SyntaxErrorD(
                f"expected an assignment operator after {name.text!r}",
                self.cur.span,
            )
        op = opmap[self.advance().kind]
        value = self.parse_expr()
        end = self.expect(T.SEMI, "';'")
        return ast.AssignStmt(name.span.to(end.span), name.text, op, value)

    def parse_if(self) -> ast.IfStmt:
        start = self.expect_word("if").span
        self.expect(T.LPAREN, "'('")
        cond = self.parse_expr()
        self.expect(T.RPAREN, "')'")
        then_s = self.parse_stmt()
        else_s = None
        if self.eat_word("else"):
            else_s = self.parse_stmt()
        end = (else_s or then_s).span
        return ast.IfStmt(start.to(end), cond, then_s, else_s)

    # -- expressions ----------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_cond()

    def parse_cond(self) -> ast.Expr:
        then_e = self.parse_or()
        if self.at_word("if"):
            self.advance()
            cond = self.parse_or()
            self.expect_word("else")
            else_e = self.parse_cond()  # right-associative chain (Figure 7)
            return ast.Cond(then_e.span.to(else_e.span), then_e, cond, else_e)
        return then_e

    def parse_or(self) -> ast.Expr:
        left = self.parse_and()
        while self.cur.kind is T.OROR:
            self.advance()
            right = self.parse_and()
            left = ast.BinOp(left.span.to(right.span), "||", left, right)
        return left

    def parse_and(self) -> ast.Expr:
        left = self.parse_cmp()
        while self.cur.kind is T.ANDAND:
            self.advance()
            right = self.parse_cmp()
            left = ast.BinOp(left.span.to(right.span), "&&", left, right)
        return left

    def parse_cmp(self) -> ast.Expr:
        left = self.parse_additive()
        if self.cur.kind in _CMP_OPS:
            op = _CMP_OPS[self.advance().kind]
            right = self.parse_additive()
            return ast.BinOp(left.span.to(right.span), op, left, right)
        return left

    def parse_additive(self) -> ast.Expr:
        left = self.parse_multiplicative()
        while self.cur.kind in _ADD_OPS:
            op = _ADD_OPS[self.advance().kind]
            right = self.parse_multiplicative()
            left = ast.BinOp(left.span.to(right.span), op, left, right)
        return left

    def parse_multiplicative(self) -> ast.Expr:
        left = self.parse_unary()
        while self.cur.kind in _MUL_OPS:
            op = _MUL_OPS[self.advance().kind]
            right = self.parse_unary()
            left = ast.BinOp(left.span.to(right.span), op, left, right)
        return left

    def parse_unary(self) -> ast.Expr:
        tok = self.cur
        if tok.kind is T.MINUS:
            self.advance()
            operand = self.parse_unary()
            return ast.UnOp(tok.span.to(operand.span), "-", operand)
        if tok.kind is T.BANG:
            self.advance()
            operand = self.parse_unary()
            return ast.UnOp(tok.span.to(operand.span), "!", operand)
        if tok.kind is T.NABLA:
            return self.parse_nabla()
        return self.parse_power()

    def parse_nabla(self) -> ast.Expr:
        """A chain of differentiation operators applied to a field.

        ``∇`` binds tighter than probing: ``∇F(pos)`` means ``(∇F)(pos)``
        (Figure 1, line 26) and ``∇⊗∇F(pos)`` means ``(∇⊗(∇F))(pos)``
        (Figure 3, line 8).  We collect the whole operator chain, apply it
        to a primary field expression, then attach an optional probe.
        """
        start = self.cur.span
        ops: list[str] = []
        while self.cur.kind is T.NABLA:
            self.advance()
            op = "∇"
            if self.cur.kind is T.OUTER_OP:
                self.advance()
                op = "∇⊗"
            elif self.cur.kind is T.DOT_OP:
                self.advance()
                op = "∇•"
            elif self.cur.kind is T.CROSS_OP:
                self.advance()
                op = "∇×"
            ops.append(op)
        base = self.parse_primary()
        expr: ast.Expr = base
        for op in reversed(ops):
            expr = ast.UnOp(start.to(base.span), op, expr)
        if self.cur.kind is T.LPAREN:
            self.advance()
            pos = self.parse_expr()
            end = self.expect(T.RPAREN, "')'")
            expr = ast.Probe(start.to(end.span), expr, pos)
        return expr

    def parse_power(self) -> ast.Expr:
        base = self.parse_postfix()
        if self.cur.kind is T.CARET:
            self.advance()
            exp = self.parse_unary()  # right-associative, allows -1 exponents
            return ast.BinOp(base.span.to(exp.span), "^", base, exp)
        return base

    def parse_postfix(self) -> ast.Expr:
        e = self.parse_primary()
        while True:
            if self.cur.kind is T.LPAREN and isinstance(e, ast.Var):
                # call / probe: only name(args) is applicable in Diderot
                self.advance()
                args: list[ast.Expr] = []
                if self.cur.kind is not T.RPAREN:
                    while True:
                        args.append(self.parse_expr())
                        if self.cur.kind is T.COMMA:
                            self.advance()
                        else:
                            break
                end = self.expect(T.RPAREN, "')'")
                e = ast.Call(e.span.to(end.span), e.name, args)
            elif self.cur.kind is T.LPAREN:
                # probe of a compound field expression: (F1 if b else F2)(x)
                self.advance()
                pos = self.parse_expr()
                end = self.expect(T.RPAREN, "')'")
                e = ast.Probe(e.span.to(end.span), e, pos)
            elif self.cur.kind is T.LBRACKET:
                self.advance()
                idx: list[ast.Expr] = []
                while True:
                    idx.append(self.parse_expr())
                    if self.cur.kind is T.COMMA:
                        self.advance()
                    else:
                        break
                end = self.expect(T.RBRACKET, "']'")
                e = ast.Index(e.span.to(end.span), e, idx)
            else:
                return e

    def parse_primary(self) -> ast.Expr:
        tok = self.cur
        if tok.kind is T.INT:
            self.advance()
            return ast.IntLit(tok.span, tok.value)
        if tok.kind is T.REAL:
            self.advance()
            return ast.RealLit(tok.span, tok.value)
        if tok.kind is T.STRING:
            self.advance()
            return ast.StringLit(tok.span, tok.value)
        if tok.kind is T.LPAREN:
            self.advance()
            e = self.parse_expr()
            self.expect(T.RPAREN, "')'")
            return e
        if tok.kind is T.BAR:
            self.advance()
            # Norm contents are tensor-valued, so parsing at the additive
            # level cannot collide with '||' or the closing '|'.
            e = self.parse_additive()
            end = self.expect(T.BAR, "closing '|'")
            return ast.Norm(tok.span.to(end.span), e)
        if tok.kind is T.LBRACKET:
            self.advance()
            elems: list[ast.Expr] = []
            while True:
                elems.append(self.parse_expr())
                if self.cur.kind is T.COMMA:
                    self.advance()
                else:
                    break
            end = self.expect(T.RBRACKET, "']'")
            return ast.TensorCons(tok.span.to(end.span), elems)
        if tok.kind is T.ID:
            if tok.text == "true":
                self.advance()
                return ast.BoolLit(tok.span, True)
            if tok.text == "false":
                self.advance()
                return ast.BoolLit(tok.span, False)
            if tok.text == "identity":
                self.advance()
                self.expect(T.LBRACKET, "'['")
                n = self.expect(T.INT, "a dimension").value
                end = self.expect(T.RBRACKET, "']'")
                return ast.Identity(tok.span.to(end.span), n)
            if tok.text == "load":
                self.advance()
                self.expect(T.LPAREN, "'('")
                path = self.expect(T.STRING, "a file name")
                end = self.expect(T.RPAREN, "')'")
                return ast.Load(tok.span.to(end.span), path.value)
            if tok.text in ("real", "int"):
                # cast syntax: real(e) / int(e) — parse as a Call
                self.advance()
                self.expect(T.LPAREN, "'('")
                arg = self.parse_expr()
                end = self.expect(T.RPAREN, "')'")
                return ast.Call(tok.span.to(end.span), tok.text, [arg])
            if tok.text in KEYWORDS:
                raise SyntaxErrorD(
                    f"unexpected keyword {tok.text!r} in expression", tok.span
                )
            self.advance()
            return ast.Var(tok.span, tok.text)
        raise SyntaxErrorD(
            f"unexpected token {tok.text or 'end of input'!r} in expression",
            tok.span,
        )


def parse_program(src: str) -> ast.Program:
    """Parse Diderot source text into a surface AST."""
    return Parser(src).parse_program()
