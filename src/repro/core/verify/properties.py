"""Metamorphic checks of the Figure-10 normalization identities.

The compiler never evaluates a field expression directly: the HighIR
builder rewrites every field expression into the normalized form of
Figure 9b using the Figure-10 identities, and only then synthesizes probe
code.  These identities are *semantic* claims —

* ``(f₁ + f₂)(x) = f₁(x) + f₂(x)``
* ``∇(e·f) = e·∇f`` and ``∇(f₁ + f₂) = ∇f₁ + ∇f₂``
* ``∇(V ⊛ ∇ⁱh) = V ⊛ ∇ⁱ⁺¹h``
* Hessian symmetry ``(∇⊗∇F)ᵀ = ∇⊗∇F``

— so each check here compiles a small Diderot program that computes both
sides *numerically* (the left through the normalized field, the right
through independent probes or central finite differences) at seeded
pseudo-random positions on smooth synthetic images, and compares.  A
normalization bug that produces well-formed but wrong IR — invisible to
the structural validator — shows up here as a numeric mismatch.

Positions are generated inside the programs themselves (a seeded
sin-hash of the strand index, coefficients baked into the source), so
one compiled program covers all sample positions in a single run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.image import Image, Orientation

#: world-space margin kept from the image border so every probe position
#: is inside the field domain at bspln3 support
_MARGIN = 4.0


@dataclass
class PropertyResult:
    name: str
    identity: str
    max_err: float
    tol: float
    n_positions: int

    @property
    def ok(self) -> bool:
        return self.max_err <= self.tol

    def __str__(self) -> str:
        mark = "ok  " if self.ok else "FAIL"
        return (f"{mark} {self.name}: {self.identity}  "
                f"max|lhs-rhs| = {self.max_err:.3e}  (tol {self.tol:.0e}, "
                f"{self.n_positions} positions)")


def _bump_image(size: int, seed: int) -> Image:
    """A smooth random sum-of-Gaussians phantom on an identity grid."""
    rng = np.random.default_rng(seed)
    ax = np.arange(size, dtype=np.float64)
    x, y = np.meshgrid(ax, ax, indexing="ij")
    img = np.zeros((size, size))
    for _ in range(6):
        cx, cy = rng.uniform(0.2 * size, 0.8 * size, 2)
        sx, sy = rng.uniform(0.08 * size, 0.25 * size, 2)
        amp = rng.uniform(-30.0, 60.0)
        img += amp * np.exp(-(((x - cx) / sx) ** 2 + ((y - cy) / sy) ** 2))
    return Image(img, dim=2, orientation=Orientation.axis_aligned(2))


def _position_stmts(rng: random.Random, size: int) -> str:
    """Diderot statements computing a pseudo-random in-domain ``vec2 p``.

    ``frac(sin(a·i + b)·c)`` is uniform enough for sampling and — being
    computed in-language — identical across every execution engine.
    """
    lo = _MARGIN
    w = size - 1 - 2 * _MARGIN
    lines = []
    for axis in (0, 1):
        a = rng.uniform(7.0, 23.0)
        b = rng.uniform(0.0, 6.28)
        lines.append(f"real u{axis} = sin(real(i) * {a:.6f} + {b:.6f})"
                     f" * 43758.5453;")
        lines.append(f"real q{axis} = {lo:.1f} + {w:.1f} *"
                     f" (u{axis} - floor(u{axis}));")
    lines.append("vec2 p = [q0, q1];")
    return "\n                    ".join(lines)


_TEMPLATE = """
    image(2)[] imgA = load("a.nrrd");
    image(2)[] imgB = load("b.nrrd");
    field#2(2)[] F1 = imgA ⊛ bspln3;
    field#2(2)[] F2 = imgB ⊛ bspln3;
{field_defs}
    strand S (int i) {{
        output {out_ty} lhs = {zero};
        output {out_ty} rhs = {zero};
        update {{
            {positions}
            lhs = {lhs};
            rhs = {rhs};
            stabilize;
        }}
    }}
    initially [ S(i) | i in 0 .. {n_last} ];
"""

_ZEROS = {
    "real": "0.0",
    "vec2": "[0.0, 0.0]",
    "tensor[2,2]": "[[0.0, 0.0], [0.0, 0.0]]",
}


def _run_check(
    *,
    name: str,
    identity: str,
    out_ty: str,
    lhs: str,
    rhs: str,
    field_defs: str,
    positions: str,
    images: dict[str, Image],
    n_positions: int,
    tol: float,
) -> PropertyResult:
    from repro.core.driver import compile_program

    src = _TEMPLATE.format(
        field_defs=field_defs,
        out_ty=out_ty,
        zero=_ZEROS[out_ty],
        positions=positions,
        lhs=lhs,
        rhs=rhs,
        n_last=n_positions - 1,
    )
    prog = compile_program(src)
    for slot, image in images.items():
        prog.bind_image(slot, image)
    out = prog.run(max_steps=4).outputs
    max_err = float(np.max(np.abs(out["lhs"] - out["rhs"])))
    return PropertyResult(name, identity, max_err, tol, n_positions)


def run_properties(
    seed: int = 0, n_positions: int = 24, size: int = 40
) -> list[PropertyResult]:
    """Run every Figure-10 identity check; returns one result per check.

    Probes go through the full pipeline (normalization → probe synthesis
    → kernel expansion → codegen), so the comparison exercises exactly
    the rewrites the identities license.
    """
    rng = random.Random(seed)
    images = {"imgA": _bump_image(size, seed * 2 + 1),
              "imgB": _bump_image(size, seed * 2 + 2)}
    scale = round(rng.uniform(0.25, 3.0), 4)
    h = 1e-3  # central-difference step; O(h²) error ≪ the 1e-4 tolerances

    def pos() -> str:
        return _position_stmts(rng, size)

    common = dict(images=images, n_positions=n_positions)
    results = [
        _run_check(
            name="probe-sum",
            identity="(f1 + f2)(x) = f1(x) + f2(x)",
            out_ty="real",
            field_defs="    field#2(2)[] G = F1 + F2;",
            lhs="G(p)", rhs="F1(p) + F2(p)",
            positions=pos(), tol=1e-10, **common,
        ),
        _run_check(
            name="grad-scale",
            identity="∇(e·f) = e·∇f",
            out_ty="vec2",
            field_defs=f"    field#2(2)[] G = {scale} * F1;",
            lhs="∇G(p)", rhs=f"{scale} * (∇F1(p))",
            positions=pos(), tol=1e-10, **common,
        ),
        _run_check(
            name="grad-sum",
            identity="∇(f1 + f2) = ∇f1 + ∇f2",
            out_ty="vec2",
            field_defs="    field#2(2)[] G = F1 + F2;",
            lhs="∇G(p)", rhs="∇F1(p) + ∇F2(p)",
            positions=pos(), tol=1e-10, **common,
        ),
        _run_check(
            name="conv-deriv",
            identity="∇(V ⊛ h) = V ⊛ ∇h  (vs central differences)",
            out_ty="vec2",
            field_defs="",
            lhs="∇F1(p)",
            rhs=(f"[(F1(p + [{h}, 0.0]) - F1(p - [{h}, 0.0])) / {2 * h}, "
                 f"(F1(p + [0.0, {h}]) - F1(p - [0.0, {h}])) / {2 * h}]"),
            positions=pos(), tol=1e-4, **common,
        ),
        _run_check(
            name="conv-deriv-2",
            identity="∇(V ⊛ ∇h) = V ⊛ ∇²h  (vs central differences)",
            out_ty="tensor[2,2]",
            field_defs="",
            lhs="∇⊗∇F1(p)",
            rhs=(f"[(∇F1(p + [{h}, 0.0]) - ∇F1(p - [{h}, 0.0])) / {2 * h}, "
                 f"(∇F1(p + [0.0, {h}]) - ∇F1(p - [0.0, {h}])) / {2 * h}]"),
            positions=pos(), tol=1e-4, **common,
        ),
    ]

    # Hessian symmetry: H = ∇⊗∇F must equal Hᵀ.  Both triangles reduce to
    # conv_contract over the same per-axis weight multiset, so after value
    # numbering they are literally the same instruction — but the check
    # runs numerically so it also covers the unoptimized pipeline.
    from repro.core.driver import compile_program

    src = _TEMPLATE.format(
        field_defs="",
        out_ty="tensor[2,2]",
        zero=_ZEROS["tensor[2,2]"],
        positions=pos(),
        lhs="∇⊗∇F1(p)",
        rhs="transpose(∇⊗∇F1(p))",
        n_last=n_positions - 1,
    )
    prog = compile_program(src)
    for slot, image in images.items():
        prog.bind_image(slot, image)
    out = prog.run(max_steps=4).outputs
    err = float(np.max(np.abs(out["lhs"] - out["rhs"])))
    results.append(PropertyResult(
        "hessian-symmetry", "(∇⊗∇F)ᵀ = ∇⊗∇F", err, 1e-12, n_positions,
    ))
    return results
