"""Differential fuzzing: random programs, N-way execution, shrinking.

:class:`ProgramGen` generates random well-typed Diderot programs over the
supported surface syntax — arithmetic, vectors, probes (``F(x)``,
``∇F(x)``), nested conditionals, early exits.  Each sample is executed

* by the compiled pipeline under every requested scheduler
  (``seq``/``thread``/``process``), and
* by the HighIR reference interpreter driven by a hand-rolled BSP loop
  (bypassing probe synthesis, kernel expansion, and codegen entirely),

and all results must agree to tight tolerance.  Any disagreement is a
compiler or runtime bug; the failing program is then *shrunk* — the
generator keeps the statement tree, and the shrinker repeatedly deletes
statements and hoists ``if`` arms while the reduced program still fails —
to a minimal source snippet for the bug report.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.errors import DiderotError

#: strands / steps for generated programs; N_STRANDS differs from every
#: tensor axis length so lane-broadcast bugs cannot hide
N_STRANDS = 12
MAX_STEPS = 3

ALL_SCHEDULERS = ("seq", "thread", "process")


def _phantom():
    from repro.data import portrait_phantom

    return portrait_phantom(48)


# -- statement tree -----------------------------------------------------------
#
# A statement is either a plain source string or an ``("if", cond, then,
# els)`` node whose arms are statement lists (``els`` may be None).  The
# tree survives generation so the shrinker can delete and hoist nodes
# structurally instead of editing text.


def render_stmts(stmts: list, indent: str = "                    ") -> str:
    out = []
    for s in stmts:
        if isinstance(s, str):
            out.append(indent + s)
        else:
            _, cond, then, els = s
            out.append(indent + f"if ({cond}) {{")
            out.append(render_stmts(then, indent + "    "))
            if els is not None:
                out.append(indent + "} else {")
                out.append(render_stmts(els, indent + "    "))
            out.append(indent + "}")
    return "\n".join(out)


def render_program(stmts: list) -> str:
    """Wrap a statement tree in the fixed strand/field template."""
    body = render_stmts(stmts)
    return f"""
        image(2)[] img = load("p.nrrd");
        field#2(2)[] F = img ⊛ bspln3;
        strand S (int i) {{
            output real x = real(i) * 0.5;
            output vec2 v = [0.1, real(i)];
            int n = 0;
            update {{
{body}
                n += 1;
                if (n >= {MAX_STEPS}) stabilize;
            }}
        }}
        initially [ S(i) | i in 0 .. {N_STRANDS - 1} ];
    """


class ProgramGen:
    """Seeded random well-typed program generator (statement-tree form)."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self.locals_reals: list[str] = []
        self.n_locals = 0

    def real(self, depth: int) -> str:
        r = self.rng
        atoms = [
            lambda: f"{r.uniform(-3, 3):.3f}",
            lambda: "x",
            lambda: "real(i)",
            lambda: "real(n)",
        ]
        if self.locals_reals:
            atoms.append(lambda: r.choice(self.locals_reals))
        if depth <= 0:
            return r.choice(atoms)()
        compound = [
            lambda: f"({self.real(depth - 1)} + {self.real(depth - 1)})",
            lambda: f"({self.real(depth - 1)} - {self.real(depth - 1)})",
            lambda: f"({self.real(depth - 1)} * {self.real(depth - 1)})",
            lambda: f"({self.real(depth - 1)} / (|({self.real(depth - 1)})| + 1.5))",
            lambda: f"sqrt(|({self.real(depth - 1)})|)",
            lambda: f"min({self.real(depth - 1)}, {self.real(depth - 1)})",
            lambda: f"max({self.real(depth - 1)}, {self.real(depth - 1)})",
            lambda: f"-{self.real(depth - 1)}",
            lambda: f"clamp(-2.0, 2.0, {self.real(depth - 1)})",
            lambda: f"real({self.int_expr(depth - 1)} / ({self.int_expr(depth - 1)} + 7))",
            lambda: f"F({self.vec2(depth - 1)})",
            lambda: f"|∇F({self.vec2(depth - 1)})|",
            lambda: f"(∇F({self.vec2(depth - 1)}))[{r.randint(0, 1)}]",
            lambda: f"({self.real(depth - 1)} if {self.cond(depth - 1)} "
                    f"else {self.real(depth - 1)})",
            lambda: f"({self.vec2(depth - 1)} • {self.vec2(depth - 1)})",
            lambda: f"|{self.vec2(depth - 1)}|",
            lambda: f"lerp({self.real(depth - 1)}, {self.real(depth - 1)}, 0.25)",
        ]
        return r.choice(atoms + compound)()

    def vec2(self, depth: int) -> str:
        r = self.rng
        base = f"[{self.real(max(0, depth - 1))}, {self.real(max(0, depth - 1))}]"
        if depth > 0 and r.random() < 0.3:
            return f"({base} + [{r.uniform(5, 40):.2f}, {r.uniform(5, 40):.2f}])"
        return base

    def int_expr(self, depth: int) -> str:
        r = self.rng
        atoms = [lambda: str(r.randint(0, 5)), lambda: "i", lambda: "n"]
        if depth <= 0:
            return r.choice(atoms)()
        compound = [
            lambda: f"({self.int_expr(depth - 1)} + {self.int_expr(depth - 1)})",
            lambda: f"({self.int_expr(depth - 1)} * {r.randint(1, 3)})",
            lambda: f"({self.int_expr(depth - 1)} % {r.randint(2, 5)})",
            lambda: f"({self.int_expr(depth - 1)} / {r.randint(2, 4)})",
        ]
        return r.choice(atoms + compound)()

    def cond(self, depth: int) -> str:
        r = self.rng
        base = [
            lambda: f"{self.real(max(0, depth - 1))} < {self.real(max(0, depth - 1))}",
            lambda: f"{self.int_expr(max(0, depth - 1))} == {self.int_expr(max(0, depth - 1))}",
            lambda: f"{self.int_expr(max(0, depth - 1))} >= {self.int_expr(max(0, depth - 1))}",
            lambda: f"inside({self.vec2(max(0, depth - 1))}, F)",
        ]
        if depth <= 0:
            return r.choice(base)()
        compound = [
            lambda: f"({self.cond(depth - 1)} && {self.cond(depth - 1)})",
            lambda: f"({self.cond(depth - 1)} || {self.cond(depth - 1)})",
            lambda: f"!({self.cond(depth - 1)})",
        ]
        return r.choice(base + compound)()

    def stmts(self, depth: int, budget: int) -> list:
        r = self.rng
        out: list = []
        for _ in range(r.randint(1, budget)):
            kind = r.random()
            if kind < 0.25 and depth > 0:
                # locals declared inside a branch are block-scoped; restore
                # a fresh copy around each arm
                saved = list(self.locals_reals)
                inner = self.stmts(depth - 1, 2)
                self.locals_reals = list(saved)
                els = self.stmts(depth - 1, 2) if r.random() < 0.5 else None
                self.locals_reals = list(saved)
                out.append(("if", self.cond(1), inner, els))
            elif kind < 0.40:
                name = f"t{self.n_locals}"
                self.n_locals += 1
                out.append(f"real {name} = {self.real(2)};")
                self.locals_reals.append(name)
            elif kind < 0.55:
                out.append(f"v = {self.vec2(2)};")
            elif kind < 0.62 and depth > 0:
                out.append(("if", self.cond(1), ["stabilize;"], None))
            elif kind < 0.67 and depth > 0:
                out.append(("if", self.cond(1), ["die;"], None))
            else:
                op = r.choice(["=", "+=", "-=", "*="])
                out.append(f"x {op} {self.real(2)};")
        return out

    def program_tree(self) -> list:
        return self.stmts(2, 5)

    def program(self) -> str:
        return render_program(self.program_tree())


# -- execution ----------------------------------------------------------------


def interpret_program(src: str, image) -> dict[str, np.ndarray]:
    """Execute via the HighIR interpreter with a hand-rolled BSP loop."""
    from repro.core.codegen.interp import HighInterpreter, compile_high

    hp = compile_high(src)
    interp = HighInterpreter(hp, {"img": image})
    g = list(interp.call(hp.globals_func, []))
    iters = [np.arange(N_STRANDS)]
    params = interp.call(hp.seed_func, g + iters)
    raw = [np.asarray(s) for s in interp.call(hp.init_func, g + list(params))]
    state = []
    for s in raw:
        # broadcast constant initializers to full lanes (N_STRANDS differs
        # from every tensor axis length, so the shape test is unambiguous)
        if s.ndim == 0 or s.shape[0] != N_STRANDS:
            s = np.broadcast_to(s, (N_STRANDS,) + s.shape).copy()
        else:
            s = s.copy()
        state.append(s)
    status = np.zeros(N_STRANDS, dtype=np.int64)
    for _ in range(100):
        active = np.flatnonzero(status == 0)
        if active.size == 0:
            break
        block = [s[active] for s in state]
        out = interp.call(hp.update_func, g + block)
        *new_state, block_status = out
        for arr, new in zip(state, new_state):
            arr[active] = new
        status[active] = block_status
    outputs = {}
    state_names = hp.init_func.result_names
    for out_name in hp.outputs:
        outputs[out_name] = state[state_names.index(out_name)]
    return outputs


def _run_scheduler(prog_src: str, image, scheduler: str,
                   fuse: bool = True,
                   backend: str = "numpy",
                   precision: str = "double") -> dict[str, np.ndarray]:
    from repro.core.driver import OptOptions, compile_program

    prog = compile_program(prog_src, precision=precision,
                           optimize=OptOptions(probe_fusion=fuse))
    prog.bind_image("img", image)
    workers = 1 if scheduler == "seq" else 2
    res = prog.run(max_steps=100, scheduler=scheduler, workers=workers,
                   block_size=5, backend=backend)
    return res.outputs


def differential_check(
    src: str,
    image=None,
    schedulers: tuple[str, ...] = ALL_SCHEDULERS,
    fuse: bool = True,
    backend: str = "numpy",
    precision: str = "double",
) -> str | None:
    """Run one program every way; None if all agree, else a message.

    The sequential compiled run is the baseline; the other schedulers must
    agree *exactly* (same generated code over the same blocks) and the
    HighIR interpreter to numeric tolerance (it computes probes through a
    different engine).  ``fuse`` toggles probe fusion in every compiled
    run, so the fuzzer exercises both the fused and the unfused pipeline.
    ``backend="c"`` runs the compiled legs through the native backend, with
    the interpreter still serving as the independent oracle; additionally
    the sequential NumPy run must match the native baseline to 1e-12.

    ``precision="single"`` compiles every leg in float32 while the HighIR
    interpreter stays float64, making it the independent higher-precision
    oracle; tolerances relax accordingly (see DESIGN.md "Native backend"):
    interpreter leg 1e-3, native-vs-NumPy leg 2e-5 relative.  Schedulers
    still agree to 1e-12 among themselves — they run the same float32
    kernel over the same blocks.
    """
    if image is None:
        image = _phantom()
    single = precision == "single"
    # float64 interpreter is the oracle in both modes
    ref = interpret_program(src, image)
    interp_tol = dict(rtol=1e-3, atol=1e-3) if single else \
        dict(rtol=1e-9, atol=1e-10)
    cross_tol = dict(rtol=2e-5, atol=1e-6) if single else \
        dict(rtol=1e-12, atol=1e-12)
    base = _run_scheduler(src, image, schedulers[0], fuse, backend, precision)
    for name in base:
        a, c = base[name], ref[name]
        if not np.allclose(a, c, equal_nan=True, **interp_tol):
            return (f"compiled ({schedulers[0]}, {precision}) vs interpreter "
                    f"disagree on {name!r}: {a} vs {c}")
    for sched in schedulers[1:]:
        out = _run_scheduler(src, image, sched, fuse, backend, precision)
        for name in base:
            a, b = base[name], out[name]
            if not np.allclose(a, b, rtol=1e-12, atol=1e-12, equal_nan=True):
                return (f"scheduler {sched!r} vs {schedulers[0]!r} disagree "
                        f"on {name!r}: {b} vs {a}")
    if backend != "numpy":
        out = _run_scheduler(src, image, schedulers[0], fuse, "numpy",
                             precision)
        for name in base:
            a, b = base[name], out[name]
            if not np.allclose(a, b, equal_nan=True, **cross_tol):
                return (f"backend {backend!r} vs 'numpy' ({precision}) "
                        f"disagree on {name!r}: {a} vs {b}")
    return None


def incremental_check(
    src: str,
    image=None,
    seed: int = 0,
    n_updates: int = 4,
    backend: str = "numpy",
    scheduler: str = "seq",
) -> str | None:
    """Replay a random patch sequence; None if every update matches.

    One checkpointed cold run, then ``n_updates`` random box patches
    applied through ``Program.update_input`` + ``run_update``.  After
    each update the stitched result must be *bit-identical* to a
    freshly compiled cold run over the patched image with the same
    scheduler/backend configuration (the incremental contract; see
    DESIGN.md "Incremental execution").  Any divergence is a dependency
    -tracking or restore bug and is reported with the update index and
    region.
    """
    from repro.core.driver import compile_program
    from repro.image import Image

    if image is None:
        image = _phantom()
    rng = np.random.default_rng(seed)
    data = np.array(image.data, dtype=np.float64, copy=True)

    def fresh(arr):
        prog = compile_program(src)
        prog.bind_image("img", Image(arr.copy(), dim=2))
        return prog

    workers = 1 if scheduler == "seq" else 2
    kw = dict(max_steps=100, scheduler=scheduler, workers=workers,
              block_size=5, backend=backend)
    prog = fresh(data)
    prog.run(checkpoint=True, **kw)
    for u in range(n_updates):
        lo = [int(rng.integers(0, s)) for s in data.shape]
        hi = [min(int(l + rng.integers(1, max(2, s // 3))), s - 1)
              for l, s in zip(lo, data.shape)]
        region = [[l, h] for l, h in zip(lo, hi)]
        sl = tuple(slice(l, h + 1) for l, h in zip(lo, hi))
        data[sl] += rng.normal(scale=0.5, size=data[sl].shape)
        prog.update_input("img", data, region=region)
        res = prog.run_update(workers=workers, block_size=5,
                              scheduler=scheduler, backend=backend)
        want = fresh(data).run(**kw)
        for name in want.outputs:
            a, b = res.outputs[name], want.outputs[name]
            if not np.array_equal(a, b, equal_nan=True):
                return (f"update {u} (region {region}, "
                        f"{res.dirty_strands} dirty) not bit-identical to "
                        f"a cold run on {name!r}: {a} vs {b}")
    return None


# -- shrinking ----------------------------------------------------------------


def _variants(stmts: list):
    """Single-step reductions of a statement tree.

    Yields new trees, each one node smaller: a statement deleted, or an
    ``if`` replaced by one of its arms (hoisting the arm's statements).
    """
    for i, s in enumerate(stmts):
        yield stmts[:i] + stmts[i + 1:]
        if not isinstance(s, str):
            _, cond, then, els = s
            yield stmts[:i] + then + stmts[i + 1:]
            if els is not None:
                yield stmts[:i] + els + stmts[i + 1:]
                yield stmts[:i] + [("if", cond, then, None)] + stmts[i + 1:]
            for sub in _variants(then):
                yield stmts[:i] + [("if", cond, sub, els)] + stmts[i + 1:]
            if els is not None:
                for sub in _variants(els):
                    yield stmts[:i] + [("if", cond, then, sub)] + stmts[i + 1:]


def shrink_failure(stmts: list, still_fails, max_attempts: int = 400) -> list:
    """Greedy structural minimization.

    ``still_fails(stmts) -> bool`` re-runs the differential check on a
    candidate; reductions that no longer fail (or no longer compile — a
    deleted declaration can orphan a use) are skipped.  Each accepted
    reduction strictly shrinks the tree, so this terminates.
    """
    attempts = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for cand in _variants(stmts):
            attempts += 1
            if attempts >= max_attempts:
                break
            if still_fails(cand):
                stmts = cand
                progress = True
                break
    return stmts


# -- the fuzzing loop ---------------------------------------------------------


@dataclass
class FuzzFailure:
    seed: int
    message: str
    source: str
    minimized: str


@dataclass
class FuzzReport:
    n_programs: int
    schedulers: tuple[str, ...]
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def fuzz(
    n: int = 50,
    seed: int = 0,
    schedulers: tuple[str, ...] = ALL_SCHEDULERS,
    shrink: bool = True,
    progress=None,
    fuse: bool = True,
    backend: str = "numpy",
    precision: str = "double",
    incremental: bool = False,
) -> FuzzReport:
    """Generate and differentially check ``n`` programs.

    Seeds are ``seed .. seed+n-1`` so a run is reproducible and a failure
    names its seed.  ``progress`` (optional callable) receives
    ``(index, seed)`` before each sample.  ``fuse=False`` fuzzes the
    unfused pipeline (``--no-fuse``); ``backend="c"`` fuzzes the native
    backend against both the interpreter and the NumPy oracle;
    ``precision="single"`` fuzzes the float32 pipeline against the
    float64 interpreter oracle at relaxed tolerance (``--single``).
    ``incremental=True`` (``--incremental``) replaces the N-way
    differential check with :func:`incremental_check`: each generated
    program gets a random patch sequence replayed through the
    dirty-region update path against fresh-compile cold oracles, under
    ``schedulers[0]`` and ``backend``.
    """
    image = _phantom()
    report = FuzzReport(n_programs=n, schedulers=tuple(schedulers))

    def check(program_src: str, sample_seed: int) -> str | None:
        if incremental:
            return incremental_check(program_src, image, seed=sample_seed,
                                     backend=backend,
                                     scheduler=schedulers[0])
        return differential_check(program_src, image, schedulers, fuse,
                                  backend, precision)

    for k in range(n):
        s = seed + k
        if progress is not None:
            progress(k, s)
        tree = ProgramGen(s).program_tree()
        src = render_program(tree)
        msg = check(src, s)
        if msg is None:
            continue

        def still_fails(cand) -> bool:
            try:
                return check(render_program(cand), s) is not None
            except DiderotError:
                return False  # the reduction broke compilation; skip it

        minimized = src
        if shrink:
            minimized = render_program(shrink_failure(tree, still_fails))
        report.failures.append(FuzzFailure(s, msg, src, minimized))
    return report
