"""Command-line entry for the verification layer.

::

    python -m repro.core.verify fuzz --n 50 --seed 0
    python -m repro.core.verify props --seed 0 --positions 24
    python -m repro.core.verify check prog.diderot [more.diderot ...]

``fuzz`` differentially executes seeded random programs (compiled under
every scheduler vs the HighIR interpreter) and prints shrunk
counterexamples; ``props`` runs the Figure-10 identity harness; ``check``
compiles source files with the IR validator enabled between every pass.
Exit status is non-zero on any failure, so all three work as CI jobs.

Every subcommand aggregates the metrics of all the programs it compiles
and runs into one registry (``repro.obs.metrics.collect``);
``--metrics-out FILE`` saves the aggregate document and ``--no-metrics``
disables collection.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import DiderotError
from repro.obs import metrics as _mx


def _cmd_fuzz(ns) -> int:
    from repro.core.verify.fuzz import ALL_SCHEDULERS, fuzz

    schedulers = tuple(ns.schedulers.split(",")) if ns.schedulers else ALL_SCHEDULERS
    report = fuzz(
        n=ns.n,
        seed=ns.seed,
        schedulers=schedulers,
        shrink=not ns.no_shrink,
        progress=(lambda k, s: print(f"[{k + 1}/{ns.n}] seed {s}", end="\r"))
        if ns.progress else None,
        fuse=not ns.no_fuse,
        backend=ns.backend,
        precision="single" if ns.single else "double",
        incremental=ns.incremental,
    )
    print(f"fuzz: {report.n_programs} programs, schedulers "
          f"{'/'.join(report.schedulers)}"
          f"{', probe fusion off' if ns.no_fuse else ''}"
          f"{f', backend {ns.backend}' if ns.backend != 'numpy' else ''}"
          f"{', single precision' if ns.single else ''}"
          f"{', incremental replay' if ns.incremental else ''}: "
          f"{'all agree' if report.ok else f'{len(report.failures)} FAILURES'}")
    for f in report.failures:
        print(f"\nseed {f.seed}: {f.message}\nminimized reproducer:")
        print(f.minimized)
    return 0 if report.ok else 1


def _cmd_props(ns) -> int:
    from repro.core.verify.properties import run_properties

    results = run_properties(seed=ns.seed, n_positions=ns.positions)
    for r in results:
        print(r)
    return 0 if all(r.ok for r in results) else 1


def _cmd_check(ns) -> int:
    from repro.core.driver import compile_to_source

    status = 0
    for path in ns.files:
        try:
            with open(path, encoding="utf-8") as fp:
                source = fp.read()
            compile_to_source(source, check=True)
        except (DiderotError, OSError) as exc:
            print(f"{path}: FAIL\n  {exc}")
            status = 1
        else:
            print(f"{path}: ok (validated after every pass)")
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.core.verify",
        description="compiler verification: differential fuzzing, "
                    "normalization properties, per-pass IR validation",
    )
    parser.add_argument("--metrics", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="collect metrics across every compiled/run "
                             "program (on by default)")
    parser.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="write the aggregate metrics JSON document")
    sub = parser.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("fuzz", help="differential fuzzing across schedulers")
    p.add_argument("--n", type=int, default=50, help="number of programs")
    p.add_argument("--seed", type=int, default=0, help="first seed")
    p.add_argument("--schedulers", default=None,
                   help="comma list (default seq,thread,process)")
    p.add_argument("--no-shrink", action="store_true",
                   help="report failures without minimizing them")
    p.add_argument("--no-fuse", action="store_true",
                   help="compile without probe fusion (A/B the optimizer)")
    p.add_argument("--backend", choices=("numpy", "c"), default="numpy",
                   help="strand-update backend for the compiled legs "
                        "(c additionally diffs against the NumPy oracle)")
    p.add_argument("--single", action="store_true",
                   help="compile the legs in single precision; the float64 "
                        "interpreter stays the oracle at relaxed tolerance")
    p.add_argument("--incremental", action="store_true",
                   help="replay random dirty-region patch sequences through "
                        "checkpointed update runs against fresh-compile "
                        "cold oracles (bit-identity contract)")
    p.add_argument("--progress", action="store_true")
    p.set_defaults(fn=_cmd_fuzz)

    p = sub.add_parser("props", help="Figure-10 normalization identities")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--positions", type=int, default=24)
    p.set_defaults(fn=_cmd_props)

    p = sub.add_parser("check", help="compile files with per-pass validation")
    p.add_argument("files", nargs="+")
    p.set_defaults(fn=_cmd_check)

    ns = parser.parse_args(argv)
    try:
        if ns.metrics:
            with _mx.collect() as reg:
                status = ns.fn(ns)
            if ns.metrics_out:
                _mx.write_metrics_json(reg, ns.metrics_out,
                                       meta={"command": ns.cmd})
                print(f"wrote metrics {ns.metrics_out}")
            return status
        return ns.fn(ns)
    except DiderotError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
