"""Compiler verification layer (validators, property harness, fuzzer).

Three independent lines of defense against miscompilation:

* :mod:`repro.core.verify.validate` — per-level IR well-formedness
  checkers (structured-SSA def-before-use, per-instruction type/shape
  consistency against the :mod:`repro.core.ir.ops` vocabularies, level
  legality).  The driver runs them at every pass boundary when
  ``--check`` / ``REPRO_CHECK=1`` is set, so the first pass that breaks
  an invariant is named in the error instead of crashing downstream.
* :mod:`repro.core.verify.properties` — numeric metamorphic tests of the
  Figure-10 normalization identities on synthetic images.
* :mod:`repro.core.verify.fuzz` — a seeded random-program generator with
  a differential harness (pygen vs. the HighIR interpreter, across the
  seq/thread/process schedulers) and a structural shrinker.
"""

from __future__ import annotations

import os

from repro.core.verify.validate import verify_func  # noqa: F401


def check_enabled(env: str = "REPRO_CHECK") -> bool:
    """True when pass-boundary IR validation is requested via ``env``."""
    return os.environ.get(env, "").strip().lower() in ("1", "true", "yes", "on")
