"""Per-level IR validators: SSA well-formedness + type/shape consistency.

:func:`repro.core.ir.base.validate` already enforces structural SSA
(def-before-use in dominance order, single assignment) and vocabulary
membership — which is also the level-legality check: a ``probe`` surviving
into MidIR or a ``weights`` surviving into LowIR is an op outside the
level's vocabulary.  :func:`verify_func` layers a full type/shape checker
on top: every instruction's result type is recomputed from its argument
types and attributes against the op's signature and compared with the
recorded type, so a pass that rewrites an instruction inconsistently is
caught at the pass boundary instead of as a shape error deep inside
generated NumPy code.

Types are the semantic :class:`~repro.core.ty.types.Ty` objects at HighIR
level plus the lowered tags ``("ivec", d)``, ``("vox", image, support)``
and ``("weights", n)`` introduced by probe synthesis and kernel expansion.
"""

from __future__ import annotations

import numpy as np

from repro.core.ir import ops as irops
from repro.core.ir.base import Body, Func, Instr, validate
from repro.core.ty.types import BOOL, INT, REAL, STRING, TensorTy
from repro.errors import CompileError
from repro.kernels import Kernel

#: level key → (vocabulary, display name)
LEVELS = {
    "high": (irops.HIGH, "HighIR"),
    "mid": (irops.MID, "MidIR"),
    "low": (irops.LOW, "LowIR"),
}

_MATH_1 = {
    "sqrt", "sin", "cos", "tan", "asin", "acos", "atan", "exp", "log",
    "floor", "ceil",
}
_MATH_2 = {"atan2", "fmod"}
_CMP_ORDERED = {"lt", "le", "gt", "ge"}


def _is_tensor(ty) -> bool:
    return isinstance(ty, TensorTy)


def _shape(ty) -> tuple:
    return ty.shape


class _TypeChecker:
    def __init__(self, func: Func, level: str, display: str, images=None):
        self.func = func
        self.level = level
        self.display = display
        self.images = images

    def fail(self, instr: Instr, msg: str) -> None:
        raise CompileError(
            f"{self.display}:{self.func.name}: {msg} in `{instr!r}`"
        )

    def slot(self, instr: Instr, name: str):
        """The ImageSlot for an image attribute, or None if unbound."""
        if self.images is None:
            return None
        if name not in self.images:
            self.fail(instr, f"unknown image slot {name!r}")
        return self.images[name]

    # -- entry -----------------------------------------------------------------

    def run(self) -> None:
        self._walk(self.func.body)

    def _walk(self, body: Body) -> None:
        for item in body.items:
            if isinstance(item, Instr):
                self._check(item)
            else:
                if item.cond.ty != BOOL:
                    raise CompileError(
                        f"{self.display}:{self.func.name}: if-condition has "
                        f"type {item.cond.ty}, expected bool"
                    )
                self._walk(item.then_body)
                self._walk(item.else_body)
                for phi in item.phis:
                    tys = {repr(phi.then_val.ty), repr(phi.else_val.ty),
                           repr(phi.result.ty)}
                    if (phi.then_val.ty != phi.result.ty
                            or phi.else_val.ty != phi.result.ty):
                        raise CompileError(
                            f"{self.display}:{self.func.name}: phi operand/"
                            f"result types disagree ({', '.join(sorted(tys))}) "
                            f"in `{phi!r}`"
                        )

    def _check(self, instr: Instr) -> None:
        if instr.op == "probe_parts":
            # the one multi-result op; checked whole rather than via _infer
            self._check_probe_parts(instr)
            return
        if len(instr.results) != 1:
            self.fail(instr, f"expected exactly one result, got {len(instr.results)}")
        expected = self._infer(instr)
        if expected is not None and expected != instr.results[0].ty:
            self.fail(
                instr,
                f"result type {instr.results[0].ty} does not match the "
                f"op signature (expected {expected})",
            )

    # -- per-op signatures -----------------------------------------------------

    def _infer(self, instr: Instr):
        """Recompute the result type; None means "no constraint derivable"."""
        op = instr.op
        tys = [a.ty for a in instr.args]
        method = getattr(self, f"_op_{op}", None)
        if method is not None:
            return method(instr, tys)
        if op in _MATH_1:
            self._want(instr, tys, (REAL,))
            return REAL
        if op in _MATH_2:
            self._want(instr, tys, (REAL, REAL))
            return REAL
        if op in _CMP_ORDERED:
            if tys not in ([INT, INT], [REAL, REAL]):
                self.fail(instr, f"ordered comparison of {tys[0]} and {tys[1]}")
            return BOOL
        self.fail(instr, f"no signature for op {op!r}")

    def _want(self, instr: Instr, tys: list, want: tuple) -> None:
        if len(tys) != len(want) or any(t != w for t, w in zip(tys, want)):
            got = ", ".join(str(t) for t in tys)
            exp = ", ".join(str(w) for w in want)
            self.fail(instr, f"argument types ({got}) do not match ({exp})")

    def _matrix(self, instr: Instr, ty) -> tuple:
        if not (_is_tensor(ty) and len(_shape(ty)) == 2):
            self.fail(instr, f"expected a matrix argument, got {ty}")
        return _shape(ty)

    # arithmetic ---------------------------------------------------------------

    def _op_const(self, instr, tys):
        if tys:
            self.fail(instr, "const takes no arguments")
        if "value" not in instr.attrs:
            self.fail(instr, "const is missing its value attribute")
        v = instr.attrs["value"]
        rty = instr.results[0].ty
        # constant folding stores raw fold results, so NumPy scalar types
        # appear alongside the Python ones
        if isinstance(v, (bool, np.bool_)):
            return BOOL
        if isinstance(v, (float, np.floating)):
            return REAL
        if isinstance(v, (int, np.integer)):
            return INT
        if isinstance(v, str):
            return STRING
        if isinstance(v, np.ndarray):
            if _is_tensor(rty):
                if tuple(v.shape) != tuple(_shape(rty)):
                    self.fail(
                        instr,
                        f"constant array shape {tuple(v.shape)} does not "
                        f"match {rty}",
                    )
                return rty
            if isinstance(rty, tuple) and rty and rty[0] in ("weights", "ivec"):
                # folded vec_cons / floor_i results keep their lowered tag
                n = rty[1]
                if v.shape[-1:] != (n,):
                    self.fail(
                        instr,
                        f"constant array shape {tuple(v.shape)} does not "
                        f"match tag {rty}",
                    )
                return rty
            self.fail(instr, f"constant array with non-tensor type {rty}")
        self.fail(instr, f"unsupported constant {type(v).__name__}")

    def _addsub(self, instr, tys):
        if tys == [INT, INT]:
            return INT
        if len(tys) == 2 and _is_tensor(tys[0]) and tys[0] == tys[1]:
            return tys[0]
        self.fail(instr, f"cannot add/subtract {tys[0]} and {tys[1]}")

    _op_add = _addsub
    _op_sub = _addsub

    def _op_mul(self, instr, tys):
        if tys == [INT, INT]:
            return INT
        if len(tys) == 2 and all(map(_is_tensor, tys)):
            s0, s1 = _shape(tys[0]), _shape(tys[1])
            if s0 == ():
                return tys[1]
            if s1 == ():
                return tys[0]
        self.fail(instr, f"cannot multiply {tys[0]} and {tys[1]} "
                         "(one operand must be a scalar)")

    def _op_div(self, instr, tys):
        if tys == [INT, INT]:
            return INT
        if (len(tys) == 2 and all(map(_is_tensor, tys))
                and _shape(tys[1]) == ()):
            return tys[0]
        self.fail(instr, f"cannot divide {tys[0]} by {tys[1]}")

    def _op_mod(self, instr, tys):
        self._want(instr, tys, (INT, INT))
        return INT

    def _op_neg(self, instr, tys):
        if tys == [INT]:
            return INT
        if len(tys) == 1 and _is_tensor(tys[0]):
            return tys[0]
        self.fail(instr, f"cannot negate {tys[0]}")

    def _op_pow(self, instr, tys):
        if len(tys) == 2 and tys[0] == REAL and tys[1] in (REAL, INT):
            return REAL
        self.fail(instr, f"pow of {tys} (expected real^real or real^int)")

    def _eqne(self, instr, tys):
        if len(tys) == 2 and tys[0] == tys[1] and tys[0] in (INT, REAL, BOOL, STRING):
            return BOOL
        self.fail(instr, f"cannot compare {tys[0]} and {tys[1]} for equality")

    _op_eq = _eqne
    _op_ne = _eqne

    def _logic2(self, instr, tys):
        self._want(instr, tys, (BOOL, BOOL))
        return BOOL

    _op_and = _logic2
    _op_or = _logic2

    def _op_not(self, instr, tys):
        self._want(instr, tys, (BOOL,))
        return BOOL

    def _op_select(self, instr, tys):
        if len(tys) != 3 or tys[0] != BOOL:
            self.fail(instr, "select expects (bool, T, T)")
        if tys[1] != tys[2]:
            self.fail(instr, f"select branches disagree: {tys[1]} vs {tys[2]}")
        return tys[1]

    # tensor ops ---------------------------------------------------------------

    def _op_dot(self, instr, tys):
        if len(tys) == 2 and all(map(_is_tensor, tys)):
            s0, s1 = _shape(tys[0]), _shape(tys[1])
            if len(s0) == 1 and s1 == s0:
                return REAL
            if len(s0) == 2 and len(s1) == 1 and s0[1] == s1[0]:
                return TensorTy((s0[0],))
            if len(s0) == 1 and len(s1) == 2 and s0[0] == s1[0]:
                return TensorTy((s1[1],))
            if len(s0) == 2 and len(s1) == 2 and s0[1] == s1[0]:
                return TensorTy((s0[0], s1[1]))
        self.fail(instr, f"dot is not defined for {tys[0]} and {tys[1]}")

    def _op_cross(self, instr, tys):
        if len(tys) == 2 and tys[0] == tys[1]:
            if tys[0] == TensorTy((3,)):
                return TensorTy((3,))
            if tys[0] == TensorTy((2,)):
                return REAL
        self.fail(instr, f"cross is not defined for {tys}")

    def _op_outer(self, instr, tys):
        if (len(tys) == 2 and all(map(_is_tensor, tys))
                and len(_shape(tys[0])) == 1 and len(_shape(tys[1])) == 1):
            return TensorTy((_shape(tys[0])[0], _shape(tys[1])[0]))
        self.fail(instr, f"outer product of {tys}")

    def _op_norm(self, instr, tys):
        if len(tys) != 1 or not _is_tensor(tys[0]):
            self.fail(instr, f"norm of {tys}")
        if instr.attrs.get("order") != len(_shape(tys[0])):
            self.fail(
                instr,
                f"norm order attribute {instr.attrs.get('order')!r} does not "
                f"match operand order {len(_shape(tys[0]))}",
            )
        return REAL

    def _square(self, instr, tys):
        n, m = self._matrix(instr, tys[0])
        if n != m:
            self.fail(instr, f"expected a square matrix, got {tys[0]}")
        return n

    def _op_trace(self, instr, tys):
        self._square(instr, tys)
        return REAL

    def _op_det(self, instr, tys):
        n = self._square(instr, tys)
        if n > 3:
            self.fail(instr, f"det supports up to 3x3 matrices, got {n}x{n}")
        return REAL

    def _op_transpose(self, instr, tys):
        n, m = self._matrix(instr, tys[0])
        return TensorTy((m, n))

    def _op_evals(self, instr, tys):
        n = self._square(instr, tys)
        return TensorTy((n,))

    def _op_evecs(self, instr, tys):
        n = self._square(instr, tys)
        return TensorTy((n, n))

    def _op_normalize_v(self, instr, tys):
        if len(tys) == 1 and _is_tensor(tys[0]) and len(_shape(tys[0])) == 1:
            return tys[0]
        self.fail(instr, f"normalize of {tys}")

    def _op_tensor_cons(self, instr, tys):
        if not tys:
            self.fail(instr, "empty tensor construction")
        first = tys[0]
        if not _is_tensor(first) or any(t != first for t in tys):
            self.fail(instr, f"tensor elements disagree: {tys}")
        return TensorTy((len(tys),) + _shape(first))

    def _op_tensor_index(self, instr, tys):
        indices = tuple(instr.attrs.get("indices", ()))
        if len(tys) != 1 or not _is_tensor(tys[0]):
            self.fail(instr, f"cannot index {tys}")
        shape = _shape(tys[0])
        if not indices or len(indices) > len(shape):
            self.fail(
                instr,
                f"{len(indices)} indices into a tensor of order {len(shape)}",
            )
        for i, size in zip(indices, shape):
            if not 0 <= i < size:
                self.fail(instr, f"index {i} out of range for axis of size {size}")
        return TensorTy(shape[len(indices):])

    def _op_identity(self, instr, tys):
        n = instr.attrs.get("n")
        if tys or not isinstance(n, int) or n < 1:
            self.fail(instr, f"identity with n={n!r}")
        return TensorTy((n, n))

    def _minmax(self, instr, tys):
        if tys in ([INT, INT], [REAL, REAL]):
            return tys[0]
        self.fail(instr, f"min/max of {tys}")

    _op_min = _minmax
    _op_max = _minmax

    def _op_abs(self, instr, tys):
        if tys in ([INT], [REAL]):
            return tys[0]
        self.fail(instr, f"abs of {tys}")

    def _op_clamp(self, instr, tys):
        self._want(instr, tys, (REAL, REAL, REAL))
        return REAL

    def _op_lerp(self, instr, tys):
        if (len(tys) == 3 and _is_tensor(tys[0]) and tys[0] == tys[1]
                and tys[2] == REAL):
            return tys[0]
        self.fail(instr, f"lerp of {tys}")

    def _op_int_to_real(self, instr, tys):
        self._want(instr, tys, (INT,))
        return REAL

    def _op_real_to_int(self, instr, tys):
        self._want(instr, tys, (REAL,))
        return INT

    # HighIR field ops ---------------------------------------------------------

    def _pos_check(self, instr, ty, dim) -> None:
        if dim == 1:
            if ty not in (REAL, TensorTy((1,))):
                self.fail(instr, f"1-D probe position has type {ty}")
        elif ty != TensorTy((dim,)):
            self.fail(instr, f"probe position has type {ty}, expected "
                             f"tensor[{dim}]")

    def _op_probe(self, instr, tys):
        if self.level != "high":
            self.fail(instr, "probe is only legal in HighIR")
        if len(tys) != 1:
            self.fail(instr, "probe takes exactly one position argument")
        kernel = instr.attrs.get("kernel")
        deriv = instr.attrs.get("deriv")
        out_shape = tuple(instr.attrs.get("out_shape", ()))
        if not isinstance(kernel, Kernel):
            self.fail(instr, f"probe kernel attribute is {kernel!r}")
        if not isinstance(deriv, int) or deriv < 0:
            self.fail(instr, f"probe deriv attribute is {deriv!r}")
        if kernel.continuity < deriv:
            self.fail(
                instr,
                f"probe differentiates a C{kernel.continuity} kernel "
                f"{deriv} times",
            )
        slot = self.slot(instr, instr.attrs.get("image"))
        if slot is not None:
            self._pos_check(instr, tys[0], slot.dim)
            want = tuple(slot.shape) + (slot.dim,) * deriv
            if out_shape != want:
                self.fail(
                    instr,
                    f"probe out_shape {out_shape} does not match image "
                    f"shape {want}",
                )
        return TensorTy(out_shape)

    def _op_inside(self, instr, tys):
        if self.level != "high":
            self.fail(instr, "inside is only legal in HighIR")
        if len(tys) != 1:
            self.fail(instr, "inside takes exactly one position argument")
        support = instr.attrs.get("support")
        if not isinstance(support, int) or support < 1:
            self.fail(instr, f"inside support attribute is {support!r}")
        slot = self.slot(instr, instr.attrs.get("image"))
        if slot is not None:
            self._pos_check(instr, tys[0], slot.dim)
        return BOOL

    # MidIR/LowIR probe machinery ----------------------------------------------

    def _vec_arg(self, instr, ty) -> int:
        if not (_is_tensor(ty) and len(_shape(ty)) == 1):
            self.fail(instr, f"expected an index vector, got {ty}")
        return _shape(ty)[0]

    def _op_to_index(self, instr, tys):
        d = self._vec_arg(instr, tys[0])
        slot = self.slot(instr, instr.attrs.get("image"))
        if slot is not None and slot.dim != d:
            self.fail(instr, f"to_index of a {d}-vector into a "
                             f"{slot.dim}-D image")
        return TensorTy((d,))

    def _op_floor_i(self, instr, tys):
        d = self._vec_arg(instr, tys[0])
        return ("ivec", d)

    def _op_fract(self, instr, tys):
        d = self._vec_arg(instr, tys[0])
        return TensorTy((d,))

    def _op_gather(self, instr, tys):
        image = instr.attrs.get("image")
        support = instr.attrs.get("support")
        if not isinstance(support, int) or support < 1:
            self.fail(instr, f"gather support attribute is {support!r}")
        if len(tys) != 1 or not (isinstance(tys[0], tuple)
                                 and tys[0][:1] == ("ivec",)):
            self.fail(instr, f"gather expects an ivec argument, got {tys}")
        slot = self.slot(instr, image)
        if slot is not None and slot.dim != tys[0][1]:
            self.fail(instr, f"gather index dimension {tys[0][1]} does not "
                             f"match {slot.dim}-D image {image!r}")
        return ("vox", image, support)

    def _op_weights(self, instr, tys):
        if self.level != "mid":
            self.fail(instr, "weights is only legal in MidIR "
                             "(LowIR expands it to horner)")
        kernel = instr.attrs.get("kernel")
        deriv = instr.attrs.get("deriv")
        if not isinstance(kernel, Kernel):
            self.fail(instr, f"weights kernel attribute is {kernel!r}")
        if not isinstance(deriv, int) or deriv < 0:
            self.fail(instr, f"weights deriv attribute is {deriv!r}")
        self._want(instr, tys, (REAL,))
        return ("weights", 2 * kernel.support)

    def _op_conv_contract(self, instr, tys):
        if not tys or not (isinstance(tys[0], tuple) and tys[0][:1] == ("vox",)):
            self.fail(instr, f"conv_contract expects a vox argument, got "
                             f"{tys[:1]}")
        _, image, support = tys[0]
        for t in tys[1:]:
            if t != ("weights", 2 * support):
                self.fail(
                    instr,
                    f"weight argument type {t} does not match support "
                    f"{support}",
                )
        slot = self.slot(instr, image)
        if slot is not None:
            if len(tys) - 1 != slot.dim:
                self.fail(
                    instr,
                    f"{len(tys) - 1} weight vectors for a {slot.dim}-D image",
                )
            return TensorTy(tuple(slot.shape))
        return None

    def _op_contract_axis(self, instr, tys):
        image = instr.attrs.get("image")
        support = instr.attrs.get("support")
        axes = instr.attrs.get("axes")
        if not isinstance(support, int) or support < 1:
            self.fail(instr, f"contract_axis support attribute is {support!r}")
        if not isinstance(axes, int) or axes < 1:
            self.fail(instr, f"contract_axis axes attribute is {axes!r}")
        if len(tys) != 2:
            self.fail(instr, "contract_axis takes (neighborhood, weights)")
        src = tys[0]
        if isinstance(src, tuple) and src[:1] == ("vox",):
            if src[1:] != (image, support):
                self.fail(
                    instr,
                    f"vox argument {src} does not match attrs "
                    f"image={image!r} support={support}",
                )
            slot = self.slot(instr, image)
            if slot is not None and axes != slot.dim:
                self.fail(
                    instr,
                    f"first contraction of a {slot.dim}-D neighborhood "
                    f"must have axes={slot.dim}, got {axes}",
                )
        elif isinstance(src, tuple) and src[:1] == ("part",):
            if src[1:] != (image, support, axes):
                self.fail(
                    instr,
                    f"partial argument {src} does not match attrs "
                    f"image={image!r} support={support} axes={axes}",
                )
        else:
            self.fail(instr, f"contract_axis expects a vox or part "
                             f"argument, got {src}")
        if tys[1] != ("weights", 2 * support):
            self.fail(
                instr,
                f"weight argument type {tys[1]} does not match support "
                f"{support}",
            )
        if axes > 1:
            return ("part", image, support, axes - 1)
        slot = self.slot(instr, image)
        if slot is not None:
            return TensorTy(tuple(slot.shape))
        return None

    def _check_probe_parts(self, instr: Instr) -> None:
        tys = [a.ty for a in instr.args]
        image = instr.attrs.get("image")
        support = instr.attrs.get("support")
        dim = instr.attrs.get("dim")
        specs = instr.attrs.get("specs")
        if not isinstance(support, int) or support < 1:
            self.fail(instr, f"probe_parts support attribute is {support!r}")
        if not isinstance(dim, int) or dim < 1:
            self.fail(instr, f"probe_parts dim attribute is {dim!r}")
        if not tys or not (isinstance(tys[0], tuple) and tys[0][:1] == ("vox",)):
            self.fail(instr, f"probe_parts expects a vox argument, got "
                             f"{tys[:1]}")
        if tys[0][1:] != (image, support):
            self.fail(
                instr,
                f"vox argument {tys[0]} does not match attrs "
                f"image={image!r} support={support}",
            )
        nweights = len(tys) - 1
        if nweights < 1:
            self.fail(instr, "probe_parts has no weight arguments")
        for t in tys[1:]:
            if t != ("weights", 2 * support):
                self.fail(
                    instr,
                    f"weight argument type {t} does not match support "
                    f"{support}",
                )
        if (not isinstance(specs, tuple) or not specs
                or not all(isinstance(s, tuple) for s in specs)):
            self.fail(instr, f"probe_parts specs attribute is {specs!r}")
        for s in specs:
            if len(s) != dim:
                self.fail(
                    instr,
                    f"spec {s} has {len(s)} entries for a {dim}-D probe",
                )
            for wi in s:
                if not isinstance(wi, int) or not 0 <= wi < nweights:
                    self.fail(
                        instr,
                        f"spec weight index {wi!r} out of range for "
                        f"{nweights} weight arguments",
                    )
        if len(instr.results) != len(specs):
            self.fail(
                instr,
                f"{len(instr.results)} results for {len(specs)} specs",
            )
        slot = self.slot(instr, image)
        if slot is not None:
            if slot.dim != dim:
                self.fail(
                    instr,
                    f"dim attribute {dim} does not match {slot.dim}-D "
                    f"image {image!r}",
                )
            want = TensorTy(tuple(slot.shape))
            for r in instr.results:
                if r.ty != want:
                    self.fail(
                        instr,
                        f"result type {r.ty} does not match the op "
                        f"signature (expected {want})",
                    )

    def _op_deriv_assemble(self, instr, tys):
        tshape = tuple(instr.attrs.get("tshape", ()))
        dim = instr.attrs.get("dim")
        deriv = instr.attrs.get("deriv")
        if not isinstance(dim, int) or not isinstance(deriv, int) or deriv < 1:
            self.fail(instr, f"deriv_assemble attrs dim={dim!r} deriv={deriv!r}")
        if len(tys) != dim ** deriv:
            self.fail(
                instr,
                f"{len(tys)} parts for dim={dim}, deriv={deriv} "
                f"(expected {dim ** deriv})",
            )
        want = TensorTy(tshape)
        for t in tys:
            if t != want:
                self.fail(instr, f"part type {t} does not match tshape {tshape}")
        return TensorTy(tshape + (dim,) * deriv)

    def _op_grad_xform(self, instr, tys):
        deriv = instr.attrs.get("deriv")
        if not isinstance(deriv, int) or deriv < 1:
            self.fail(instr, f"grad_xform deriv attribute is {deriv!r}")
        if len(tys) != 1 or not _is_tensor(tys[0]):
            self.fail(instr, f"grad_xform of {tys}")
        if len(_shape(tys[0])) < deriv:
            self.fail(
                instr,
                f"grad_xform of a {len(_shape(tys[0]))}-order tensor with "
                f"deriv={deriv}",
            )
        self.slot(instr, instr.attrs.get("image"))
        return tys[0]

    def _op_index_inside(self, instr, tys):
        d = self._vec_arg(instr, tys[0])
        support = instr.attrs.get("support")
        if not isinstance(support, int) or support < 1:
            self.fail(instr, f"index_inside support attribute is {support!r}")
        slot = self.slot(instr, instr.attrs.get("image"))
        if slot is not None and slot.dim != d:
            self.fail(instr, f"index_inside of a {d}-vector into a "
                             f"{slot.dim}-D image")
        return BOOL

    def _op_horner(self, instr, tys):
        coeffs = instr.attrs.get("coeffs")
        if not coeffs or not all(isinstance(c, (int, float)) for c in coeffs):
            self.fail(instr, f"horner coeffs attribute is {coeffs!r}")
        self._want(instr, tys, (REAL,))
        return REAL

    def _op_vec_cons(self, instr, tys):
        if not tys or any(t != REAL for t in tys):
            self.fail(instr, f"vec_cons of non-scalar arguments {tys}")
        return ("weights", len(tys))


def verify_func(func: Func, level: str, images=None) -> None:
    """Validate one function at an IR level (``"high"``/``"mid"``/``"low"``).

    Raises :class:`~repro.errors.CompileError` on the first violation:
    SSA breakage, an op outside the level's vocabulary, or a result type
    inconsistent with the op's signature.  ``images`` (the driver's
    ``HighProgram.images``) enables the image-derived shape checks.
    """
    if level not in LEVELS:
        raise CompileError(f"unknown IR level {level!r}")
    vocab, display = LEVELS[level]
    validate(func, vocab, display)
    _TypeChecker(func, level, display, images).run()
