"""Semantic types of the Diderot language (paper §3.1, §3.4).

Concrete value types: ``bool``, ``int``, ``string``, and ``tensor[σ]``
(``real`` ≡ ``tensor[]``, ``vecN`` ≡ ``tensor[N]``).  Abstract types:
``image(d)[σ]``, ``kernel#k``, and ``field#k(d)[σ]``.

Signature *patterns* may additionally contain :class:`ShapeVar`,
:class:`DimVar`, and :class:`ContVar` — the "shape variables and dimension
variables" of §5.1 — which :func:`match` binds against ground types.
"""

from __future__ import annotations

from dataclasses import dataclass


class Ty:
    """Base class of all semantic types."""

    def __str__(self) -> str:  # pragma: no cover - overridden everywhere
        return self.__class__.__name__


@dataclass(frozen=True)
class BoolTy(Ty):
    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class IntTy(Ty):
    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True)
class StringTy(Ty):
    def __str__(self) -> str:
        return "string"


def _shape_str(shape: tuple) -> str:
    return "[" + ",".join(str(s) for s in shape) + "]"


@dataclass(frozen=True)
class TensorTy(Ty):
    """``tensor[σ]``; ``shape`` entries are ints or pattern variables."""

    shape: tuple = ()

    def __str__(self) -> str:
        if self.shape == ():
            return "real"
        return f"tensor{_shape_str(self.shape)}"

    @property
    def order(self) -> int:
        return len(self.shape)


@dataclass(frozen=True)
class ImageTy(Ty):
    """``image(d)[σ]``."""

    dim: object
    shape: tuple = ()

    def __str__(self) -> str:
        return f"image({self.dim}){_shape_str(self.shape)}"


@dataclass(frozen=True)
class KernelTy(Ty):
    """``kernel#k``."""

    continuity: object

    def __str__(self) -> str:
        return f"kernel#{self.continuity}"


@dataclass(frozen=True)
class FieldTy(Ty):
    """``field#k(d)[σ]``: C^k functions from d-space to tensor[σ]."""

    continuity: object
    dim: object
    shape: tuple = ()

    def __str__(self) -> str:
        return f"field#{self.continuity}({self.dim}){_shape_str(self.shape)}"


BOOL = BoolTy()
INT = IntTy()
STRING = StringTy()
REAL = TensorTy(())


def vec(n: int) -> TensorTy:
    return TensorTy((n,))


def matrix(n: int, m: int) -> TensorTy:
    return TensorTy((n, m))


# --------------------------------------------------------------------------
# pattern variables for overload signatures


@dataclass(frozen=True)
class ShapeVar:
    """A shape variable ``σ``: binds a whole tensor shape tuple."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class DimVar:
    """A dimension variable ``d``: binds one integer dimension (1-3)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ContVar:
    """A continuity variable ``k``: binds a kernel/field continuity level."""

    name: str

    def __str__(self) -> str:
        return self.name


def is_ground(ty: Ty) -> bool:
    """True when ``ty`` contains no pattern variables."""
    if isinstance(ty, TensorTy):
        return all(isinstance(s, int) for s in ty.shape)
    if isinstance(ty, ImageTy):
        return isinstance(ty.dim, int) and all(isinstance(s, int) for s in ty.shape)
    if isinstance(ty, KernelTy):
        return isinstance(ty.continuity, int)
    if isinstance(ty, FieldTy):
        return (
            isinstance(ty.continuity, int)
            and isinstance(ty.dim, int)
            and all(isinstance(s, int) for s in ty.shape)
        )
    return True


def _bind(env: dict, var, value) -> bool:
    if var.name in env:
        return env[var.name] == value
    env[var.name] = value
    return True


def _match_shape(pattern: tuple, actual: tuple, env: dict) -> bool:
    # A shape pattern is either a single ShapeVar (binding the whole tuple),
    # or a tuple of ints/DimVars matched positionally, possibly with one
    # trailing ShapeVar capturing a prefix ("σ, d" patterns from Figure 2
    # are expressed with a *leading* ShapeVar: ("σ*", d)).
    if len(pattern) == 1 and isinstance(pattern[0], ShapeVar):
        return _bind(env, pattern[0], tuple(actual))
    if pattern and isinstance(pattern[0], ShapeVar):
        # leading shape var: σ binds all but the remaining fixed entries
        rest = pattern[1:]
        if len(actual) < len(rest):
            return False
        split = len(actual) - len(rest)
        if not _bind(env, pattern[0], tuple(actual[:split])):
            return False
        return _match_shape(tuple(rest), tuple(actual[split:]), env)
    if len(pattern) != len(actual):
        return False
    for p, a in zip(pattern, actual):
        if isinstance(p, int):
            if p != a:
                return False
        elif isinstance(p, DimVar):
            if not _bind(env, p, a):
                return False
        else:
            return False
    return True


def match(pattern: Ty, actual: Ty, env: dict) -> bool:
    """One-way unification: bind ``pattern``'s variables to match ``actual``.

    ``actual`` must be ground.  Bindings accumulate in ``env`` (shared
    across the parameters of one signature, so repeated variables force
    equality — e.g. ``tensor[σ] + tensor[σ]``).
    """
    if isinstance(pattern, TensorTy) and isinstance(actual, TensorTy):
        return _match_shape(pattern.shape, actual.shape, env)
    if isinstance(pattern, ImageTy) and isinstance(actual, ImageTy):
        if isinstance(pattern.dim, DimVar):
            if not _bind(env, pattern.dim, actual.dim):
                return False
        elif pattern.dim != actual.dim:
            return False
        return _match_shape(pattern.shape, actual.shape, env)
    if isinstance(pattern, KernelTy) and isinstance(actual, KernelTy):
        if isinstance(pattern.continuity, ContVar):
            return _bind(env, pattern.continuity, actual.continuity)
        return pattern.continuity == actual.continuity
    if isinstance(pattern, FieldTy) and isinstance(actual, FieldTy):
        if isinstance(pattern.continuity, ContVar):
            if not _bind(env, pattern.continuity, actual.continuity):
                return False
        elif pattern.continuity != actual.continuity:
            return False
        if isinstance(pattern.dim, DimVar):
            if not _bind(env, pattern.dim, actual.dim):
                return False
        elif pattern.dim != actual.dim:
            return False
        return _match_shape(pattern.shape, actual.shape, env)
    return type(pattern) is type(actual) and pattern == actual


def substitute(pattern: Ty, env: dict) -> Ty:
    """Instantiate a signature's result type from the match bindings."""

    def sub_shape(shape: tuple) -> tuple:
        out = []
        for s in shape:
            if isinstance(s, ShapeVar):
                out.extend(env[s.name])
            elif isinstance(s, DimVar):
                out.append(env[s.name])
            else:
                out.append(s)
        return tuple(out)

    def sub_scalar(v):
        if isinstance(v, (DimVar, ContVar)):
            return env[v.name]
        return v

    if isinstance(pattern, TensorTy):
        return TensorTy(sub_shape(pattern.shape))
    if isinstance(pattern, ImageTy):
        return ImageTy(sub_scalar(pattern.dim), sub_shape(pattern.shape))
    if isinstance(pattern, KernelTy):
        return KernelTy(sub_scalar(pattern.continuity))
    if isinstance(pattern, FieldTy):
        return FieldTy(
            sub_scalar(pattern.continuity),
            sub_scalar(pattern.dim),
            sub_shape(pattern.shape),
        )
    return pattern
