"""Overload tables for Diderot's operators and builtin functions.

"Although Diderot is a monomorphic language, most of its operators have
instances at multiple types ... we use a mix of ad hoc overloading and
polymorphism in the type checker" (paper §5.1).  Each operator maps to a
list of :class:`Sig` patterns tried in order; the first whose parameters
match (see :func:`repro.core.ty.types.match`) and whose guard passes
determines the result type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.ty.types import (
    BOOL,
    ContVar,
    DimVar,
    FieldTy,
    ImageTy,
    INT,
    KernelTy,
    REAL,
    ShapeVar,
    STRING,
    TensorTy,
    Ty,
    match,
    substitute,
)

S = ShapeVar("σ")
S2 = ShapeVar("σ2")
D = DimVar("d")
D1 = DimVar("d1")
D2 = DimVar("d2")
D3 = DimVar("d3")
K = ContVar("k")
K2 = ContVar("k2")

TENSOR_S = TensorTy((S,))
FIELD = FieldTy(K, D, (S,))


@dataclass
class Sig:
    """One overload instance.

    ``result`` computes the result type from the unification bindings;
    ``guard`` may veto a structurally matching call with an error message
    (e.g. differentiating a C⁰ field — the continuity tracking of §3.4).
    """

    params: tuple
    result: Callable[[dict], Ty]
    guard: Optional[Callable[[dict], Optional[str]]] = None

    def try_apply(self, arg_tys: list) -> tuple[Optional[Ty], Optional[str]]:
        """(result_ty, None) on success; (None, guard_error|None) otherwise."""
        if len(arg_tys) != len(self.params):
            return None, None
        env: dict = {}
        for p, a in zip(self.params, arg_tys):
            if not match(p, a, env):
                return None, None
        if self.guard is not None:
            err = self.guard(env)
            if err is not None:
                return None, err
        return self.result(env), None


def const(ty: Ty) -> Callable[[dict], Ty]:
    return lambda env: ty


def subst(pattern: Ty) -> Callable[[dict], Ty]:
    return lambda env: substitute(pattern, env)


def _differentiable(env: dict) -> Optional[str]:
    if env["k"] <= 0:
        return (
            f"cannot differentiate a field#{env['k']} field: no continuous "
            "derivatives remain (choose a smoother kernel)"
        )
    return None


def _deriv_field(extra_shape) -> Callable[[dict], Ty]:
    """Result of a differentiation: continuity k-1, shape σ extended."""

    def build(env: dict) -> Ty:
        shape = tuple(env.get("σ", ())) + tuple(
            env["d"] if s == "d" else s for s in extra_shape
        )
        return FieldTy(env["k"] - 1, env["d"], shape)

    return build


def _min_cont_field(env: dict) -> Ty:
    return FieldTy(min(env["k"], env["k2"]), env["d"], tuple(env["σ"]))


#: operator name → overload list.  Tried in order; first match wins.
OPERATORS: dict[str, list[Sig]] = {
    "+": [
        Sig((INT, INT), const(INT)),
        Sig((TENSOR_S, TENSOR_S), subst(TENSOR_S)),
        Sig((FieldTy(K, D, (S,)), FieldTy(K2, D, (S,))), _min_cont_field),
    ],
    "-": [
        Sig((INT, INT), const(INT)),
        Sig((TENSOR_S, TENSOR_S), subst(TENSOR_S)),
        Sig((FieldTy(K, D, (S,)), FieldTy(K2, D, (S,))), _min_cont_field),
    ],
    "*": [
        Sig((INT, INT), const(INT)),
        Sig((REAL, TENSOR_S), subst(TENSOR_S)),
        Sig((TENSOR_S, REAL), subst(TENSOR_S)),
        Sig((REAL, FIELD), subst(FIELD)),
        Sig((FIELD, REAL), subst(FIELD)),
    ],
    "/": [
        Sig((INT, INT), const(INT)),
        Sig((TENSOR_S, REAL), subst(TENSOR_S)),
        Sig((FIELD, REAL), subst(FIELD)),
    ],
    "%": [Sig((INT, INT), const(INT))],
    "^": [
        Sig((REAL, INT), const(REAL)),
        Sig((REAL, REAL), const(REAL)),
    ],
    "neg": [
        Sig((INT,), const(INT)),
        Sig((TENSOR_S,), subst(TENSOR_S)),
        Sig((FIELD,), subst(FIELD)),
    ],
    "!": [Sig((BOOL,), const(BOOL))],
    "&&": [Sig((BOOL, BOOL), const(BOOL))],
    "||": [Sig((BOOL, BOOL), const(BOOL))],
    "==": [
        Sig((INT, INT), const(BOOL)),
        Sig((REAL, REAL), const(BOOL)),
        Sig((BOOL, BOOL), const(BOOL)),
        Sig((STRING, STRING), const(BOOL)),
    ],
    "<": [Sig((INT, INT), const(BOOL)), Sig((REAL, REAL), const(BOOL))],
    # dot product / contraction of adjacent indices (paper §3.2)
    "•": [
        Sig((TensorTy((D,)), TensorTy((D,))), const(REAL)),
        Sig((TensorTy((D1, D2)), TensorTy((D2,))), subst(TensorTy((D1,)))),
        Sig((TensorTy((D1,)), TensorTy((D1, D2))), subst(TensorTy((D2,)))),
        Sig((TensorTy((D1, D2)), TensorTy((D2, D3))), subst(TensorTy((D1, D3)))),
    ],
    "×": [
        Sig((TensorTy((3,)), TensorTy((3,))), const(TensorTy((3,)))),
        Sig((TensorTy((2,)), TensorTy((2,))), const(REAL)),
    ],
    "⊗": [
        Sig((TensorTy((D1,)), TensorTy((D2,))), subst(TensorTy((D1, D2)))),
    ],
    # convolution: image ⊛ kernel or kernel ⊛ image (Figures 1 and 7)
    "⊛": [
        Sig((ImageTy(D, (S,)), KernelTy(K)), subst(FieldTy(K, D, (S,)))),
        Sig((KernelTy(K), ImageTy(D, (S,))), subst(FieldTy(K, D, (S,)))),
    ],
    # differentiation (Figure 2's typing rules)
    "∇": [
        Sig((FieldTy(K, D, ()),), _deriv_field(("d",)), guard=_differentiable),
    ],
    "∇⊗": [
        Sig(
            (FieldTy(K, D, (S, D1)),),
            lambda env: FieldTy(
                env["k"] - 1, env["d"], tuple(env["σ"]) + (env["d1"], env["d"])
            ),
            guard=_differentiable,
        ),
    ],
    # divergence and curl (§8.3 future work, implemented as extensions)
    "∇•": [
        Sig(
            (FieldTy(K, D, (D,)),),
            lambda env: FieldTy(env["k"] - 1, env["d"], ()),
            guard=_differentiable,
        ),
    ],
    "∇×": [
        Sig(
            (FieldTy(K, 3, (3,)),),
            lambda env: FieldTy(env["k"] - 1, 3, (3,)),
            guard=_differentiable,
        ),
        Sig(
            (FieldTy(K, 2, (2,)),),
            lambda env: FieldTy(env["k"] - 1, 2, ()),
            guard=_differentiable,
        ),
    ],
    "norm": [
        Sig((TensorTy((S,)),), const(REAL)),
    ],
}

# '!=', '<=', '>', '>=' share the '==' / '<' tables.
OPERATORS["!="] = OPERATORS["=="]
OPERATORS["<="] = OPERATORS["<"]
OPERATORS[">"] = OPERATORS["<"]
OPERATORS[">="] = OPERATORS["<"]

_R1 = [Sig((REAL,), const(REAL))]
_R2 = [Sig((REAL, REAL), const(REAL))]

#: builtin function name → overload list.
FUNCTIONS: dict[str, list[Sig]] = {
    "inside": [
        Sig((TensorTy((D,)), FieldTy(K, D, (S,))), const(BOOL)),
        # 1-D fields are probed at real positions, not tensor[1].
        Sig((REAL, FieldTy(K, 1, (S,))), const(BOOL)),
    ],
    "normalize": [Sig((TensorTy((D,)),), subst(TensorTy((D,))))],
    "trace": [Sig((TensorTy((D, D)),), const(REAL))],
    "det": [Sig((TensorTy((D, D)),), const(REAL))],
    "transpose": [Sig((TensorTy((D1, D2)),), subst(TensorTy((D2, D1))))],
    "evals": [Sig((TensorTy((D, D)),), subst(TensorTy((D,))))],
    "evecs": [Sig((TensorTy((D, D)),), subst(TensorTy((D, D))))],
    "dot": [Sig((TensorTy((D,)), TensorTy((D,))), const(REAL))],
    "cross": OPERATORS["×"],
    "outer": OPERATORS["⊗"],
    "sqrt": _R1, "sin": _R1, "cos": _R1, "tan": _R1,
    "asin": _R1, "acos": _R1, "atan": _R1, "exp": _R1, "log": _R1,
    "atan2": _R2, "pow": _R2,
    "abs": [Sig((INT,), const(INT)), Sig((REAL,), const(REAL))],
    "min": [Sig((INT, INT), const(INT)), Sig((REAL, REAL), const(REAL))],
    "max": [Sig((INT, INT), const(INT)), Sig((REAL, REAL), const(REAL))],
    # clamp(lo, hi, x) — Teem/Diderot argument order
    "clamp": [Sig((REAL, REAL, REAL), const(REAL))],
    "lerp": [
        Sig((TENSOR_S, TENSOR_S, REAL), subst(TENSOR_S)),
    ],
    "real": [Sig((INT,), const(REAL)), Sig((REAL,), const(REAL))],
    "int": [Sig((REAL,), const(INT)), Sig((INT,), const(INT))],
    "fmod": _R2,
    "floor": _R1,
    "ceil": _R1,
}

#: builtin constant name → type.
CONSTANTS: dict[str, Ty] = {
    "pi": REAL,
}


def resolve(table: dict[str, list[Sig]], name: str, arg_tys: list) -> tuple[Optional[Ty], Optional[str]]:
    """Resolve an overloaded name against ground argument types.

    Returns ``(result_ty, None)`` on success or ``(None, message)`` where
    ``message`` is a guard error (if one fired) or ``None`` for a plain
    no-instance failure.
    """
    guard_err: Optional[str] = None
    for sig in table.get(name, []):
        ty, err = sig.try_apply(arg_tys)
        if ty is not None:
            return ty, None
        if err is not None and guard_err is None:
            guard_err = err
    return None, guard_err
