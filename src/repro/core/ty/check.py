"""The Diderot type checker (paper §3.4, §5.1).

Checks a surface AST bottom-up, resolving operator overloads through the
signature tables in :mod:`repro.core.ty.builtins` and annotating every
expression node with its ground semantic type (``expr.ty``).  The checker
enforces the field typing rules of Figure 2 — including the continuity
bookkeeping that "helps ensure sensible numerical results" (§1) — plus the
structural rules of §3.3: immutable globals, ``load`` only in the global
section, state variables mutable only within methods, and
``stabilize``/``die`` only inside ``update``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.syntax import ast
from repro.core.ty import builtins as bi
from repro.core.ty.types import (
    BOOL,
    FieldTy,
    ImageTy,
    INT,
    KernelTy,
    REAL,
    STRING,
    TensorTy,
    Ty,
)
from repro.errors import TypeErrorD
from repro.kernels import KERNELS

#: variable kinds, used downstream by simplification and code generation
GLOBAL = "global"
PARAM = "param"
STATE = "state"
LOCAL = "local"
ITER = "iter"
KERNEL_CONST = "kernel"


@dataclass
class VarInfo:
    name: str
    ty: Ty
    kind: str
    mutable: bool
    is_output: bool = False
    is_input: bool = False


@dataclass
class TypedProgram:
    """The result of type checking: the AST plus symbol information."""

    program: ast.Program
    globals: dict[str, VarInfo]
    global_order: list[str]
    params: dict[str, VarInfo]
    state: dict[str, VarInfo]
    state_order: list[str]
    outputs: list[str]

    @property
    def inputs(self) -> list[str]:
        return [n for n in self.global_order if self.globals[n].is_input]


def resolve_ty_expr(t: ast.TyExpr) -> Ty:
    """Turn a source type annotation into a semantic type."""
    if t.kind == "bool":
        return BOOL
    if t.kind == "int":
        return INT
    if t.kind == "string":
        return STRING
    if t.kind == "real":
        return REAL
    if t.kind == "tensor":
        for s in t.shape:
            if s < 2:
                raise TypeErrorD(
                    f"tensor shape dimensions must be >= 2, got {s} "
                    "(scalars are tensor[])",
                    t.span,
                )
        return TensorTy(tuple(t.shape))
    if t.kind == "image":
        if t.dim not in (1, 2, 3):
            raise TypeErrorD(f"image dimension must be 1-3, got {t.dim}", t.span)
        return ImageTy(t.dim, tuple(t.shape))
    if t.kind == "kernel":
        return KernelTy(t.continuity)
    if t.kind == "field":
        if t.dim not in (1, 2, 3):
            raise TypeErrorD(f"field dimension must be 1-3, got {t.dim}", t.span)
        return FieldTy(t.continuity, t.dim, tuple(t.shape))
    raise TypeErrorD(f"unknown type {t.kind!r}", t.span)  # pragma: no cover


def _is_concrete(ty: Ty) -> bool:
    """Concrete (storable) value types: bool/int/string/tensor."""
    return isinstance(ty, (type(BOOL), type(INT), type(STRING), TensorTy))


class Checker:
    def __init__(self, prog: ast.Program):
        self.prog = prog
        self.globals: dict[str, VarInfo] = {}
        self.global_order: list[str] = []
        self.params: dict[str, VarInfo] = {}
        self.state: dict[str, VarInfo] = {}
        self.state_order: list[str] = []
        self.locals: list[dict[str, VarInfo]] = []
        self.in_update = False

    # -- scope handling ------------------------------------------------------

    def lookup(self, name: str, span) -> VarInfo:
        for scope in reversed(self.locals):
            if name in scope:
                return scope[name]
        for table in (self.state, self.params, self.globals):
            if name in table:
                return table[name]
        if name in KERNELS:
            k = KERNELS[name]
            return VarInfo(name, KernelTy(k.continuity), KERNEL_CONST, False)
        if name in bi.CONSTANTS:
            return VarInfo(name, bi.CONSTANTS[name], GLOBAL, False)
        raise TypeErrorD(f"undefined variable {name!r}", span)

    def _check_fresh(self, name: str, span) -> None:
        shadowed = (
            any(name in s for s in self.locals)
            or name in self.state
            or name in self.params
            or name in self.globals
            or name in KERNELS
            or name in bi.CONSTANTS
        )
        if shadowed:
            raise TypeErrorD(f"redefinition of {name!r}", span)

    # -- program -------------------------------------------------------------

    def check(self) -> TypedProgram:
        for g in self.prog.globals:
            self.check_global(g)
        self.check_strand(self.prog.strand)
        self.check_initially(self.prog.initially)
        outputs = [n for n in self.state_order if self.state[n].is_output]
        if not outputs:
            raise TypeErrorD(
                f"strand {self.prog.strand.name!r} has no output variables",
                self.prog.strand.span,
            )
        return TypedProgram(
            self.prog,
            self.globals,
            self.global_order,
            self.params,
            self.state,
            self.state_order,
            outputs,
        )

    def check_global(self, g: ast.GlobalDecl) -> None:
        self._check_fresh(g.name, g.span)
        declared = resolve_ty_expr(g.ty_expr)
        if g.is_input and not _is_concrete(declared):
            raise TypeErrorD(
                f"input {g.name!r}: inputs must have concrete types, "
                f"not {declared}",
                g.span,
            )
        if g.init is not None:
            actual = self.check_expr(g.init, allow_load=True, expected=declared)
            if actual != declared:
                raise TypeErrorD(
                    f"global {g.name!r} declared {declared} but initialized "
                    f"with {actual}",
                    g.span,
                )
        self.globals[g.name] = VarInfo(
            g.name, declared, GLOBAL, mutable=False, is_input=g.is_input
        )
        self.global_order.append(g.name)

    def check_strand(self, s: ast.StrandDecl) -> None:
        for p in s.params:
            self._check_fresh(p.name, p.span)
            ty = resolve_ty_expr(p.ty_expr)
            if not _is_concrete(ty):
                raise TypeErrorD(
                    f"strand parameter {p.name!r} must have a concrete type, "
                    f"not {ty}",
                    p.span,
                )
            self.params[p.name] = VarInfo(p.name, ty, PARAM, mutable=False)
        for sv in s.state:
            self._check_fresh(sv.name, sv.span)
            declared = resolve_ty_expr(sv.ty_expr)
            if not _is_concrete(declared):
                raise TypeErrorD(
                    f"strand state variable {sv.name!r} must have a concrete "
                    f"type, not {declared}",
                    sv.span,
                )
            if sv.is_output and isinstance(declared, type(STRING)):
                raise TypeErrorD(
                    f"output variable {sv.name!r} may not be a string", sv.span
                )
            actual = self.check_expr(sv.init)
            if actual != declared:
                raise TypeErrorD(
                    f"state variable {sv.name!r} declared {declared} but "
                    f"initialized with {actual}",
                    sv.span,
                )
            self.state[sv.name] = VarInfo(
                sv.name, declared, STATE, mutable=True, is_output=sv.is_output
            )
            self.state_order.append(sv.name)
        seen = set()
        for m in s.methods:
            if m.name in seen:
                raise TypeErrorD(f"duplicate method {m.name!r}", m.span)
            seen.add(m.name)
            self.in_update = m.name == "update"
            self.locals.append({})
            self.check_block(m.body)
            self.locals.pop()
            self.in_update = False

    def check_initially(self, init: ast.Initially) -> None:
        if init.strand != self.prog.strand.name:
            raise TypeErrorD(
                f"initially creates {init.strand!r} but the program defines "
                f"strand {self.prog.strand.name!r}",
                init.span,
            )
        # Iterator bounds are global-scope int expressions; iterator
        # variables are then visible in the strand arguments.
        scope: dict[str, VarInfo] = {}
        for it in init.iters:
            for bound in (it.lo, it.hi):
                ty = self.check_expr(bound)
                if ty != INT:
                    raise TypeErrorD(
                        f"comprehension bounds must be int, got {ty}", bound.span
                    )
            if it.name in scope:
                raise TypeErrorD(f"duplicate iterator {it.name!r}", it.span)
            scope[it.name] = VarInfo(it.name, INT, ITER, mutable=False)
        self.locals.append(scope)
        sparams = self.prog.strand.params
        if len(init.args) != len(sparams):
            raise TypeErrorD(
                f"strand {init.strand!r} takes {len(sparams)} arguments, "
                f"initially supplies {len(init.args)}",
                init.span,
            )
        for arg, p in zip(init.args, sparams):
            ty = self.check_expr(arg)
            want = resolve_ty_expr(p.ty_expr)
            if ty != want:
                raise TypeErrorD(
                    f"argument for parameter {p.name!r} has type {ty}, "
                    f"expected {want}",
                    arg.span,
                )
        self.locals.pop()

    # -- statements ------------------------------------------------------------

    def check_block(self, b: ast.Block) -> None:
        self.locals.append({})
        for s in b.stmts:
            self.check_stmt(s)
        self.locals.pop()

    def check_stmt(self, s: ast.Stmt) -> None:
        if isinstance(s, ast.Block):
            self.check_block(s)
        elif isinstance(s, ast.DeclStmt):
            self._check_fresh(s.name, s.span)
            declared = resolve_ty_expr(s.ty_expr)
            actual = self.check_expr(s.init)
            if actual != declared:
                raise TypeErrorD(
                    f"local {s.name!r} declared {declared} but initialized "
                    f"with {actual}",
                    s.span,
                )
            self.locals[-1][s.name] = VarInfo(s.name, declared, LOCAL, mutable=True)
        elif isinstance(s, ast.AssignStmt):
            info = self.lookup(s.name, s.span)
            if not info.mutable:
                raise TypeErrorD(
                    f"cannot assign to {info.kind} variable {s.name!r}", s.span
                )
            value_ty = self.check_expr(s.value)
            if s.op == "=":
                if value_ty != info.ty:
                    raise TypeErrorD(
                        f"assigning {value_ty} to {s.name!r} of type {info.ty}",
                        s.span,
                    )
            else:
                op = s.op[0]  # '+', '-', '*', '/'
                result, guard_err = bi.resolve(bi.OPERATORS, op, [info.ty, value_ty])
                if result is None:
                    msg = guard_err or (
                        f"no instance of {op!r} for ({info.ty}, {value_ty})"
                    )
                    raise TypeErrorD(msg, s.span)
                if result != info.ty:
                    raise TypeErrorD(
                        f"{s.name!r} {s.op} ... produces {result}, but "
                        f"{s.name!r} has type {info.ty}",
                        s.span,
                    )
        elif isinstance(s, ast.IfStmt):
            cond_ty = self.check_expr(s.cond)
            if cond_ty != BOOL:
                raise TypeErrorD(f"if condition must be bool, got {cond_ty}", s.cond.span)
            self.check_stmt(s.then_s)
            if s.else_s is not None:
                self.check_stmt(s.else_s)
        elif isinstance(s, (ast.StabilizeStmt, ast.DieStmt)):
            if not self.in_update:
                word = "stabilize" if isinstance(s, ast.StabilizeStmt) else "die"
                raise TypeErrorD(
                    f"{word!r} is only allowed inside the update method", s.span
                )
        else:  # pragma: no cover
            raise TypeErrorD(f"unknown statement {type(s).__name__}", s.span)

    # -- expressions -----------------------------------------------------------

    def check_expr(self, e: ast.Expr, allow_load: bool = False, expected: Optional[Ty] = None) -> Ty:
        ty = self._infer(e, allow_load, expected)
        e.ty = ty
        return ty

    def _infer(self, e: ast.Expr, allow_load: bool, expected: Optional[Ty]) -> Ty:
        if isinstance(e, ast.IntLit):
            return INT
        if isinstance(e, ast.RealLit):
            return REAL
        if isinstance(e, ast.BoolLit):
            return BOOL
        if isinstance(e, ast.StringLit):
            return STRING
        if isinstance(e, ast.Var):
            return self.lookup(e.name, e.span).ty
        if isinstance(e, ast.Load):
            if not allow_load:
                raise TypeErrorD(
                    "load may only be used in the global section (§3.3.1)",
                    e.span,
                )
            if not isinstance(expected, ImageTy):
                raise TypeErrorD(
                    "load must initialize a variable with a declared image "
                    "type (the declaration determines the expected shape)",
                    e.span,
                )
            return expected
        if isinstance(e, ast.Identity):
            if e.n < 2:
                raise TypeErrorD("identity[n] requires n >= 2", e.span)
            return TensorTy((e.n, e.n))
        if isinstance(e, ast.Norm):
            inner = self.check_expr(e.operand, allow_load)
            result, guard_err = bi.resolve(bi.OPERATORS, "norm", [inner])
            if result is None:
                raise TypeErrorD(
                    guard_err or f"|...| is not defined for {inner}", e.span
                )
            return result
        if isinstance(e, ast.UnOp):
            inner = self.check_expr(e.operand, allow_load)
            name = "neg" if e.op == "-" else e.op
            result, guard_err = bi.resolve(bi.OPERATORS, name, [inner])
            if result is None:
                raise TypeErrorD(
                    guard_err or f"no instance of {e.op!r} for {inner}", e.span
                )
            return result
        if isinstance(e, ast.BinOp):
            # `kernel ⊛ load(...)` (Figure 7): the declared field type
            # determines the expected image type of the load.
            exp_img = None
            if e.op == "⊛" and isinstance(expected, FieldTy):
                exp_img = ImageTy(expected.dim, expected.shape)
            lt = self.check_expr(
                e.left, allow_load, exp_img if isinstance(e.left, ast.Load) else None
            )
            rt = self.check_expr(
                e.right, allow_load, exp_img if isinstance(e.right, ast.Load) else None
            )
            result, guard_err = bi.resolve(bi.OPERATORS, e.op, [lt, rt])
            if result is None:
                raise TypeErrorD(
                    guard_err or f"no instance of {e.op!r} for ({lt}, {rt})",
                    e.span,
                )
            return result
        if isinstance(e, ast.Cond):
            cond_ty = self.check_expr(e.cond, allow_load)
            if cond_ty != BOOL:
                raise TypeErrorD(
                    f"conditional test must be bool, got {cond_ty}", e.cond.span
                )
            t1 = self.check_expr(e.then_e, allow_load)
            t2 = self.check_expr(e.else_e, allow_load)
            if t1 != t2:
                raise TypeErrorD(
                    f"conditional branches disagree: {t1} vs {t2}", e.span
                )
            return t1
        if isinstance(e, ast.Index):
            base_ty = self.check_expr(e.base, allow_load)
            if not isinstance(base_ty, TensorTy) or base_ty.order == 0:
                raise TypeErrorD(f"cannot index a value of type {base_ty}", e.span)
            if len(e.indices) > base_ty.order:
                raise TypeErrorD(
                    f"too many indices for {base_ty}: got {len(e.indices)}",
                    e.span,
                )
            for idx, size in zip(e.indices, base_ty.shape):
                ity = self.check_expr(idx, allow_load)
                if ity != INT:
                    raise TypeErrorD(f"tensor index must be int, got {ity}", idx.span)
                if isinstance(idx, ast.IntLit) and not (0 <= idx.value < size):
                    raise TypeErrorD(
                        f"index {idx.value} out of range for axis of size {size}",
                        idx.span,
                    )
            return TensorTy(base_ty.shape[len(e.indices):])
        if isinstance(e, ast.TensorCons):
            elem_tys = [self.check_expr(el, allow_load) for el in e.elements]
            first = elem_tys[0]
            if not isinstance(first, TensorTy):
                raise TypeErrorD(
                    f"tensor elements must be tensors, got {first}", e.span
                )
            for t in elem_tys[1:]:
                if t != first:
                    raise TypeErrorD(
                        f"tensor elements disagree: {first} vs {t}", e.span
                    )
            return TensorTy((len(e.elements),) + first.shape)
        if isinstance(e, ast.Probe):
            fty = self.check_expr(e.field, allow_load)
            if not isinstance(fty, FieldTy):
                raise TypeErrorD(
                    f"cannot probe a value of type {fty}", e.field.span
                )
            pos_ty = self.check_expr(e.pos, allow_load)
            want = REAL if fty.dim == 1 else TensorTy((fty.dim,))
            if pos_ty != want:
                raise TypeErrorD(
                    f"probe position must be {want}, got {pos_ty}", e.pos.span
                )
            return TensorTy(fty.shape)
        if isinstance(e, ast.Call):
            return self._infer_call(e, allow_load)
        raise TypeErrorD(f"unexpected expression {type(e).__name__}", e.span)

    def _infer_call(self, e: ast.Call, allow_load: bool) -> Ty:
        # A "call" is a field probe when the callee names a field variable
        # (§3.2); otherwise it must be a builtin function.
        callee: Optional[VarInfo]
        try:
            callee = self.lookup(e.func, e.span)
        except TypeErrorD:
            callee = None
        if callee is not None and isinstance(callee.ty, FieldTy):
            fty = callee.ty
            if len(e.args) != 1:
                raise TypeErrorD(
                    f"field probe {e.func!r} takes exactly one position",
                    e.span,
                )
            pos_ty = self.check_expr(e.args[0], allow_load)
            want = REAL if fty.dim == 1 else TensorTy((fty.dim,))
            if pos_ty != want:
                raise TypeErrorD(
                    f"probe position for {e.func!r} must be {want}, got {pos_ty}",
                    e.args[0].span,
                )
            return TensorTy(fty.shape)
        if e.func in bi.FUNCTIONS:
            arg_tys = [self.check_expr(a, allow_load) for a in e.args]
            result, guard_err = bi.resolve(bi.FUNCTIONS, e.func, arg_tys)
            if result is None:
                args = ", ".join(str(t) for t in arg_tys)
                raise TypeErrorD(
                    guard_err or f"no instance of {e.func}({args})", e.span
                )
            return result
        if callee is not None:
            raise TypeErrorD(
                f"{e.func!r} has type {callee.ty} and cannot be applied",
                e.span,
            )
        raise TypeErrorD(f"undefined function {e.func!r}", e.span)


def check_program(prog: ast.Program) -> TypedProgram:
    """Type check a parsed program, annotating expression nodes in place."""
    return Checker(prog).check()
