"""Diderot's type system (paper §3.4, Figure 2; §5.1).

The language is monomorphic, but "most of its operators have instances at
multiple types", so the checker uses "a mix of ad hoc overloading and
polymorphism ... the internal representation of types includes kinded type
variables, shape variables, and dimension variables" resolved by
unification (§5.1).  Because every Diderot expression has a ground type
bottom-up (all declarations are explicitly typed and literals are ground),
unification here is one-way matching of signature patterns — with shape,
dimension, and continuity variables — against ground argument types.
"""

from repro.core.ty.types import (
    BOOL,
    INT,
    REAL,
    STRING,
    FieldTy,
    ImageTy,
    KernelTy,
    TensorTy,
    Ty,
    vec,
)
from repro.core.ty.check import check_program, TypedProgram

__all__ = [
    "BOOL",
    "INT",
    "REAL",
    "STRING",
    "FieldTy",
    "ImageTy",
    "KernelTy",
    "TensorTy",
    "Ty",
    "TypedProgram",
    "check_program",
    "vec",
]
