"""The compiler driver: source text → runnable program.

Mirrors the paper's pipeline (§5.1): parse → type check → simplify →
HighIR → field normalization (inside HighIR construction) → contraction +
value numbering → MidIR (probe synthesis) → contraction + value numbering
→ LowIR (kernel expansion) → contraction + value numbering → Python/NumPy
code generation.

Every stage is traced (one ``cat="pass"`` span per pass, carrying IR
instruction counts and value-numbering removal counts), so
:class:`CompileStats` is a *view* over the trace — pass a
:class:`repro.obs.Tracer` to see the same spans alongside the runtime's.

Optimizations can be disabled individually (``optimize=...``) to support
the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.codegen.pygen import generate_module, load_module
from repro.core.ir import ops as irops
from repro.core.syntax import parse_program
from repro.core.ty import check_program
from repro.core.xform.contract import contract
from repro.core.xform.probe_fuse import probe_fuse
from repro.core.xform.to_high import HighBuilder, HighProgram
from repro.core.xform.to_low import to_low
from repro.core.xform.to_mid import to_mid
from repro.core.xform.value_numbering import value_number
from repro.errors import CompileError
from repro.obs import Tracer
from repro.obs import metrics as _mx


@dataclass
class OptOptions:
    """Optimization toggles (all on by default).

    ``contraction`` and ``value_numbering`` are the paper's §5.4 passes;
    ``probe_fusion`` is the shared-partial-contraction rewrite
    (:mod:`repro.core.xform.probe_fuse`), exposed separately so the fused
    and unfused pipelines can be A/B-compared (``--no-fuse``).
    """

    contraction: bool = True
    value_numbering: bool = True
    probe_fusion: bool = True


@dataclass
class CompileStats:
    """Per-function instruction counts across the pipeline, for the
    §5.4 optimization ablations.

    Built from the compile trace (:meth:`from_trace`); the driver emits
    an ``instr-count`` instant after each IR stage and a ``removed`` count
    on every value-numbering pass span.
    """

    high_instrs: dict[str, int] = field(default_factory=dict)
    mid_instrs: dict[str, int] = field(default_factory=dict)
    mid_instrs_unopt: dict[str, int] = field(default_factory=dict)
    low_instrs: dict[str, int] = field(default_factory=dict)
    vn_removed: dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_trace(cls, events) -> "CompileStats":
        """Aggregate a trace's compile events into the stats tables."""
        stats = cls()
        tables = {
            "high": stats.high_instrs,
            "mid": stats.mid_instrs,
            "mid-unopt": stats.mid_instrs_unopt,
            "low": stats.low_instrs,
        }
        for ev in events:
            if ev.cat == "count" and ev.name == "instr-count":
                table = tables.get(ev.args["ir"])
                if table is not None:
                    table[ev.args["func"]] = ev.args["value"]
            elif ev.cat == "pass" and ev.name == "value-numbering":
                fn = ev.args.get("func")
                if fn is not None:
                    stats.vn_removed[fn] = (
                        stats.vn_removed.get(fn, 0) + ev.args.get("removed", 0)
                    )
        return stats


def _count(func) -> int:
    return sum(1 for _ in func.body.instructions())


def _optimize(func, vocab, opts: OptOptions, tracer, ir: str, verify=None) -> None:
    if opts.contraction:
        with tracer.span("contraction", cat="pass", func=func.name, ir=ir):
            contract(func, vocab)
        if verify is not None:
            verify(func, ir, "contraction")
    if opts.value_numbering:
        with tracer.span("value-numbering", cat="pass", func=func.name, ir=ir) as sp:
            sp.set("removed", value_number(func))
        if verify is not None:
            verify(func, ir, "value-numbering")
    if opts.contraction:
        with tracer.span("contraction", cat="pass", func=func.name, ir=ir):
            contract(func, vocab)
        if verify is not None:
            verify(func, ir, "contraction")


def _resolve_cache(cache) -> bool:
    """Map a ``cache=`` argument to a concrete on/off decision.

    ``True``/``False`` are explicit; ``None`` defers to the
    ``REPRO_COMPILE_CACHE`` environment variable (off by default — the
    serving layer opts in explicitly, CLI users via the env var or
    ``--compile-cache``).
    """
    if cache is not None:
        return bool(cache)
    import os

    return os.environ.get("REPRO_COMPILE_CACHE", "").strip() not in ("", "0")


def compile_to_source(
    source: str,
    optimize: OptOptions | None = None,
    tracer=None,
    check: bool | None = None,
    cache: bool | None = None,
    cache_extra: tuple = (),
) -> tuple[str, HighProgram, CompileStats]:
    """Compile Diderot source to generated Python source + metadata.

    ``tracer`` receives one span per compiler pass; when omitted (or
    disabled) an internal tracer collects the same events so the returned
    :class:`CompileStats` is always populated.

    ``check`` enables pass-boundary IR validation
    (:mod:`repro.core.verify`): after every pass the current function is
    re-validated (SSA well-formedness + per-op type/shape signatures),
    and a violation raises a :class:`~repro.errors.CompileError` naming
    the pass that broke the invariant.  Defaults to the ``REPRO_CHECK``
    environment variable.  Each check emits one ``cat="check"`` span.

    ``cache`` enables the persistent compile cache
    (:mod:`repro.serve.cache`): after the front end (parse → typecheck →
    HighIR normalization) the normalized HighIR is fingerprinted together
    with ``optimize`` and ``cache_extra`` (precision/backend tags from
    :func:`compile_program`), and on a hit the optimizer passes, lowering,
    and codegen are all skipped — the pickled entry supplies the lowered
    program, generated source, and stats.  A hit emits one
    ``cat="cache"`` span (and *no* optimizer-pass spans, which is how the
    tests verify nothing re-ran).  Defaults to ``REPRO_COMPILE_CACHE``.
    """
    from repro.core.verify import check_enabled, verify_func

    opts = optimize or OptOptions()
    tr = tracer if (tracer is not None and tracer.enabled) else Tracer()
    if check is None:
        check = check_enabled()
    hp = None

    def _verify(fn, ir: str, after: str) -> None:
        if not check:
            return
        with tr.span("verify", cat="check", func=fn.name, ir=ir, after=after):
            try:
                verify_func(fn, ir, images=hp.images if hp else None)
            except CompileError as exc:
                raise CompileError(
                    f"IR validation failed after pass {after!r} "
                    f"({ir} IR, function {fn.name!r}): {exc}"
                ) from exc

    verify = _verify if check else None
    with tr.span("parse", cat="pass"):
        prog = parse_program(source)
    with tr.span("typecheck", cat="pass"):
        typed = check_program(prog)
    with tr.span("highir", cat="pass"):
        hp = HighBuilder(typed, tracer=tr).build()

    cache_key = None
    if _resolve_cache(cache):
        from repro.serve import cache as _cc

        cache_key = _cc.fingerprint(hp, opts, cache_extra)
        entry = _cc.load(cache_key, tracer=tr)
        if entry is not None:
            _mx.fold_pass_spans(tr)
            return entry.gen_source, entry.high, entry.stats

    funcs = HighBuilder.all_funcs(hp)
    for fn in funcs:
        tr.instant("instr-count", cat="count", func=fn.name, ir="high", value=_count(fn))
        _verify(fn, "high", "highir")
        _optimize(fn, irops.HIGH, opts, tr, "high", verify=verify)
        with tr.span("midir", cat="pass", func=fn.name):
            to_mid(fn, hp.images)
        _verify(fn, "mid", "midir")
        tr.instant("instr-count", cat="count", func=fn.name, ir="mid-unopt",
                   value=_count(fn))
        _optimize(fn, irops.MID, opts, tr, "mid", verify=verify)
        if opts.probe_fusion:
            with tr.span("probe-fuse", cat="pass", func=fn.name, ir="mid") as sp:
                fstats = probe_fuse(fn)
                for k, v in fstats.items():
                    sp.set(k, v)
            if verify is not None:
                verify(fn, "mid", "probe-fuse")
            if fstats["groups"] or fstats["chains"]:
                # clean up after the rewrite (fusion can strand dead
                # duplicates and VN may merge shared chain prefixes)
                _optimize(fn, irops.MID, opts, tr, "mid", verify=verify)
        tr.instant("instr-count", cat="count", func=fn.name, ir="mid", value=_count(fn))
        with tr.span("lowir", cat="pass", func=fn.name):
            to_low(fn)
        _verify(fn, "low", "lowir")
        _optimize(fn, irops.LOW, opts, tr, "low", verify=verify)
        tr.instant("instr-count", cat="count", func=fn.name, ir="low", value=_count(fn))
    with tr.span("codegen", cat="pass"):
        source_out = generate_module(funcs)
    # pass timings also land in the metrics registry (ambient collect
    # scope and the session-wide GLOBAL), so `--metrics-out` documents
    # carry compile cost alongside runtime cost
    _mx.fold_pass_spans(tr)
    stats = CompileStats.from_trace(tr.events)
    if cache_key is not None:
        from repro.serve import cache as _cc

        _cc.store(cache_key, source_out, hp, stats, tracer=tr)
    return source_out, hp, stats


def compile_program(
    source: str,
    precision: str = "double",
    optimize: OptOptions | None = None,
    search_path: str = ".",
    tracer=None,
    check: bool | None = None,
    cache: bool | None = None,
):
    """Compile Diderot source text into a runnable Program.

    Parameters
    ----------
    source:
        Diderot program text.
    precision:
        ``"single"`` or ``"double"`` — the representation of ``real``
        (paper §6.3: "the user must decide if reals are represented as
        single or double-precision floats").
    optimize:
        Optimization toggles; defaults to everything on.
    search_path:
        Directory against which ``load(...)`` paths resolve.
    tracer:
        Optional :class:`repro.obs.Tracer` that receives the compiler-pass
        spans (pass the same tracer to :meth:`Program.run
        <repro.runtime.program.Program.run>` for one unified timeline).
    check:
        Run the IR validators at every pass boundary (``--check``);
        defaults to the ``REPRO_CHECK`` environment variable.
    cache:
        Use the persistent compile cache (``--compile-cache``); defaults
        to the ``REPRO_COMPILE_CACHE`` environment variable.  Precision
        participates in the key (the generated NumPy source is
        precision-independent, but the lowered IR cached for the native
        backend is specialized downstream, and a conservative key is
        cheap).
    """
    from repro.runtime.program import Program

    if precision not in ("single", "double"):
        raise CompileError(f"precision must be 'single' or 'double', got {precision!r}")
    dtype = np.float32 if precision == "single" else np.float64
    gen_source, hp, stats = compile_to_source(source, optimize, tracer=tracer,
                                              check=check, cache=cache,
                                              cache_extra=("precision", precision))
    namespace = load_module(gen_source)
    return Program(
        high=hp,
        namespace=namespace,
        generated_source=gen_source,
        dtype=dtype,
        search_path=search_path,
        stats=stats,
    )


def compile_file(path: str, **kwargs):
    """Compile a ``.diderot`` file (load paths resolve next to it)."""
    import os

    with open(path, encoding="utf-8") as fp:
        src = fp.read()
    kwargs.setdefault("search_path", os.path.dirname(os.path.abspath(path)))
    return compile_program(src, **kwargs)
