"""The compiler driver: source text → runnable program.

Mirrors the paper's pipeline (§5.1): parse → type check → simplify →
HighIR → field normalization (inside HighIR construction) → contraction +
value numbering → MidIR (probe synthesis) → contraction + value numbering
→ LowIR (kernel expansion) → contraction + value numbering → Python/NumPy
code generation.

Optimizations can be disabled individually (``optimize=...``) to support
the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.codegen.pygen import generate_module, load_module
from repro.core.ir import ops as irops
from repro.core.syntax import parse_program
from repro.core.ty import check_program
from repro.core.xform.contract import contract
from repro.core.xform.to_high import HighBuilder, HighProgram
from repro.core.xform.to_low import to_low
from repro.core.xform.to_mid import to_mid
from repro.core.xform.value_numbering import value_number
from repro.errors import CompileError


@dataclass
class OptOptions:
    """Optimization toggles (both on by default, as in the paper)."""

    contraction: bool = True
    value_numbering: bool = True


@dataclass
class CompileStats:
    """Per-function instruction counts across the pipeline, for the
    §5.4 optimization ablations."""

    high_instrs: dict[str, int] = field(default_factory=dict)
    mid_instrs: dict[str, int] = field(default_factory=dict)
    mid_instrs_unopt: dict[str, int] = field(default_factory=dict)
    low_instrs: dict[str, int] = field(default_factory=dict)
    vn_removed: dict[str, int] = field(default_factory=dict)


def _count(func) -> int:
    return sum(1 for _ in func.body.instructions())


def _optimize(func, vocab, opts: OptOptions, stats_removed: dict) -> None:
    if opts.contraction:
        contract(func, vocab)
    if opts.value_numbering:
        removed = value_number(func)
        stats_removed[func.name] = stats_removed.get(func.name, 0) + removed
    if opts.contraction:
        contract(func, vocab)


def compile_to_source(
    source: str,
    optimize: OptOptions | None = None,
) -> tuple[str, HighProgram, CompileStats]:
    """Compile Diderot source to generated Python source + metadata."""
    opts = optimize or OptOptions()
    prog = parse_program(source)
    typed = check_program(prog)
    hp = HighBuilder(typed).build()
    stats = CompileStats()
    funcs = HighBuilder.all_funcs(hp)
    for fn in funcs:
        stats.high_instrs[fn.name] = _count(fn)
        _optimize(fn, irops.HIGH, opts, stats.vn_removed)
        to_mid(fn, hp.images)
        stats.mid_instrs_unopt[fn.name] = _count(fn)
        _optimize(fn, irops.MID, opts, stats.vn_removed)
        stats.mid_instrs[fn.name] = _count(fn)
        to_low(fn)
        _optimize(fn, irops.LOW, opts, stats.vn_removed)
        stats.low_instrs[fn.name] = _count(fn)
    source_out = generate_module(funcs)
    return source_out, hp, stats


def compile_program(
    source: str,
    precision: str = "double",
    optimize: OptOptions | None = None,
    search_path: str = ".",
):
    """Compile Diderot source text into a runnable Program.

    Parameters
    ----------
    source:
        Diderot program text.
    precision:
        ``"single"`` or ``"double"`` — the representation of ``real``
        (paper §6.3: "the user must decide if reals are represented as
        single or double-precision floats").
    optimize:
        Optimization toggles; defaults to everything on.
    search_path:
        Directory against which ``load(...)`` paths resolve.
    """
    from repro.runtime.program import Program

    if precision not in ("single", "double"):
        raise CompileError(f"precision must be 'single' or 'double', got {precision!r}")
    dtype = np.float32 if precision == "single" else np.float64
    gen_source, hp, stats = compile_to_source(source, optimize)
    namespace = load_module(gen_source)
    return Program(
        high=hp,
        namespace=namespace,
        generated_source=gen_source,
        dtype=dtype,
        search_path=search_path,
        stats=stats,
    )


def compile_file(path: str, **kwargs):
    """Compile a ``.diderot`` file (load paths resolve next to it)."""
    import os

    with open(path, encoding="utf-8") as fp:
        src = fp.read()
    kwargs.setdefault("search_path", os.path.dirname(os.path.abspath(path)))
    return compile_program(src, **kwargs)
